// Observability subsystem: the span tracer, the metrics registry, the
// Chrome trace_event export, and the EXPLAIN ANALYZE invariants (per-box
// row counts reconcile exactly with the executor's work counters, and
// identical runs produce identical counters).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/constant_folding.h"
#include "rewrite/engine.h"

namespace starmagic {
namespace {

// Minimal structural JSON check: balanced {} / [] outside string literals,
// legal escapes inside them, and no trailing garbage. Not a full parser,
// but catches every way the exporter could emit broken JSON (unescaped
// quotes/newlines, unbalanced nesting, truncation).
bool JsonWellFormed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= text.size()) return false;
        char e = text[i + 1];
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't' && e != 'u') {
          return false;
        }
        ++i;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.BeginSpan("ignored"), -1);
  tracer.AddEvent("ignored");
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.events().empty());
  // SpanScope on a null tracer is a no-op, not a crash.
  SpanScope null_scope(nullptr, "ignored");
  EXPECT_EQ(null_scope.span_id(), -1);
}

TEST(TracerTest, SpansNestUnderInnermostOpenSpan) {
  Tracer tracer(true);
  int root = tracer.BeginSpan("root", "test");
  int child = tracer.BeginSpan("child", "test");
  int grandchild = tracer.BeginSpan("grandchild", "test");
  tracer.EndSpan(grandchild);
  int sibling = tracer.BeginSpan("sibling", "test");
  tracer.EndSpan(sibling);
  tracer.EndSpan(child);
  tracer.EndSpan(root);

  ASSERT_EQ(tracer.spans().size(), 4u);
  EXPECT_EQ(tracer.spans()[root].parent_id, -1);
  EXPECT_EQ(tracer.spans()[child].parent_id, root);
  EXPECT_EQ(tracer.spans()[grandchild].parent_id, child);
  EXPECT_EQ(tracer.spans()[sibling].parent_id, child);
  for (const SpanRecord& span : tracer.spans()) {
    EXPECT_TRUE(span.closed()) << span.name;
    EXPECT_GE(span.end_us, span.begin_us) << span.name;
  }
}

TEST(TracerTest, EndSpanClosesEverythingOpenedAfterIt) {
  Tracer tracer(true);
  int root = tracer.BeginSpan("root");
  tracer.BeginSpan("leaked-child");
  tracer.BeginSpan("leaked-grandchild");
  tracer.EndSpan(root);  // error-path pattern: children never ended
  for (const SpanRecord& span : tracer.spans()) {
    EXPECT_TRUE(span.closed()) << span.name;
  }
  // The stack is empty again: the next span is a root.
  int next = tracer.BeginSpan("next");
  EXPECT_EQ(tracer.spans()[next].parent_id, -1);
}

TEST(TracerTest, AttributesAndEvents) {
  Tracer tracer(true);
  int span = tracer.BeginSpan("work", "test");
  tracer.SetAttribute(span, "rows", int64_t{42});
  tracer.SetAttribute(span, "phase", "phase2");
  tracer.SetAttribute(span, "rows", int64_t{43});  // last write wins
  tracer.AddEvent("warning", "test", {{"detail", "boom"}});
  tracer.EndSpan(span);

  const SpanRecord& record = tracer.spans()[span];
  const TraceValue* rows = record.FindAttribute("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->i, 43);
  const TraceValue* phase = record.FindAttribute("phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->str, "phase2");
  EXPECT_EQ(record.FindAttribute("absent"), nullptr);

  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].name, "warning");
  EXPECT_EQ(tracer.events()[0].parent_span, span);
}

TEST(TracerTest, SpanScopeClosesOnDestructionAndEarlyEndIsIdempotent) {
  Tracer tracer(true);
  {
    SpanScope outer(&tracer, "outer");
    outer.SetAttribute("k", true);
    {
      SpanScope inner(&tracer, "inner");
      inner.End();
      inner.End();  // idempotent
    }
  }
  ASSERT_EQ(tracer.spans().size(), 2u);
  for (const SpanRecord& span : tracer.spans()) {
    EXPECT_TRUE(span.closed()) << span.name;
  }
}

TEST(TracerTest, TraceEventJsonIsWellFormedWithHostileNames) {
  Tracer tracer(true);
  int span = tracer.BeginSpan("quote \" backslash \\ newline \n tab \t");
  tracer.SetAttribute(span, "key \"x\"", "value\nwith\tescapes\\");
  tracer.AddEvent("event \"e\"");
  tracer.EndSpan(span);
  tracer.BeginSpan("left-open");  // exported as if it ended now

  std::string json = tracer.ToTraceEventJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST(TracerTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(TracerTest, ClearKeepsEnabledFlag) {
  Tracer tracer(true);
  tracer.BeginSpan("s");
  tracer.AddEvent("e");
  tracer.Clear();
  EXPECT_TRUE(tracer.enabled());
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.events().empty());
}

TEST(MetricsTest, CountersAndHistograms) {
  MetricsRegistry registry;
  registry.counter("exec.cache_hits")->Add(3);
  registry.counter("exec.cache_hits")->Add();
  EXPECT_EQ(registry.CounterValue("exec.cache_hits"), 4);
  // CounterValue on an untouched name reads 0 without inserting it.
  EXPECT_EQ(registry.CounterValue("never.touched"), 0);
  EXPECT_EQ(registry.counters().count("never.touched"), 0u);

  Histogram* h = registry.histogram("exec.rows_per_query");
  h->Observe(1);
  h->Observe(5);
  h->Observe(100);
  EXPECT_EQ(h->count(), 3);
  EXPECT_DOUBLE_EQ(h->sum(), 106);
  EXPECT_DOUBLE_EQ(h->min(), 1);
  EXPECT_DOUBLE_EQ(h->max(), 100);

  std::string dump = registry.ToString();
  EXPECT_NE(dump.find("exec.cache_hits 4"), std::string::npos);
  EXPECT_NE(dump.find("exec.rows_per_query count=3"), std::string::npos);

  registry.Clear();
  EXPECT_EQ(registry.CounterValue("exec.cache_hits"), 0);
}

TEST(MetricsTest, ToStringIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("zebra")->Add(1);
  registry.counter("alpha")->Add(2);
  std::string dump = registry.ToString();
  EXPECT_LT(dump.find("alpha"), dump.find("zebra"));
}

TEST(RewriteEngineTest, SetEnabledReportsUnknownRules) {
  Tracer tracer(true);
  RewriteEngine engine;
  engine.set_tracer(&tracer);
  engine.AddRule(std::make_unique<ConstantFoldingRule>());
  EXPECT_TRUE(engine.SetEnabled("constant-folding", false));
  EXPECT_FALSE(engine.IsEnabled("constant-folding"));
  EXPECT_TRUE(engine.SetEnabled("constant-folding", true));

  EXPECT_FALSE(engine.SetEnabled("no-such-rule", true));
  ASSERT_FALSE(tracer.events().empty());
  EXPECT_EQ(tracer.events().back().name, "rewrite.unknown_rule");
}

// End-to-end fixture: the paper's employee/department schema with an
// aggregate view, small enough for the magic pipeline to run every phase.
class ObsQueryTest : public ::testing::Test {
 protected:
  void Populate(Database* db) {
    ASSERT_TRUE(db->ExecuteScript(R"sql(
      CREATE TABLE department (deptno INTEGER, deptname VARCHAR);
      CREATE TABLE employee (empno INTEGER, workdept INTEGER,
                             salary DOUBLE);
    )sql").ok());
    Table* dept = db->catalog()->GetTable("department");
    Table* emp = db->catalog()->GetTable("employee");
    for (int d = 0; d < 8; ++d) {
      ASSERT_TRUE(dept->Append({Value::Int(d),
                                Value::String(d == 2 ? "Planning"
                                                     : "D" + std::to_string(d))})
                      .ok());
    }
    for (int e = 0; e < 64; ++e) {
      ASSERT_TRUE(emp->Append({Value::Int(e), Value::Int(e % 8),
                               Value::Double(20000.0 + 100.0 * e)})
                      .ok());
    }
    ASSERT_TRUE(db->SetPrimaryKey("department", {"deptno"}).ok());
    ASSERT_TRUE(db->ExecuteScript(R"sql(
      CREATE VIEW avgDeptSal (workdept, avgsalary) AS
        SELECT workdept, AVG(salary) FROM employee GROUP BY workdept;
    )sql").ok());
    ASSERT_TRUE(db->AnalyzeAll().ok());
  }

  const std::string query_ =
      "SELECT d.deptname, s.avgsalary FROM department d, avgDeptSal s "
      "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'";
};

TEST_F(ObsQueryTest, QueryLifecycleEmitsClosedNestedSpans) {
  Database db;
  Populate(&db);
  Tracer tracer(true);
  QueryOptions options(ExecutionStrategy::kMagic);
  options.tracer = &tracer;
  auto result = db.Query(query_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 1);

  bool saw_optimize = false;
  bool saw_execute = false;
  for (const SpanRecord& span : tracer.spans()) {
    EXPECT_TRUE(span.closed()) << span.name;
    // Parents always precede children and exist.
    if (span.parent_id != -1) {
      ASSERT_GE(span.parent_id, 0);
      ASSERT_LT(span.parent_id, span.id);
    }
    if (span.name == "optimize") saw_optimize = true;
    if (span.name == "execute") saw_execute = true;
  }
  EXPECT_TRUE(saw_optimize);
  EXPECT_TRUE(saw_execute);
  std::string json = tracer.ToTraceEventJson();
  EXPECT_TRUE(JsonWellFormed(json));
}

TEST_F(ObsQueryTest, ExplainAnalyzeRowsReconcileWithExecStats) {
  Database db;
  Populate(&db);
  QueryOptions options(ExecutionStrategy::kMagic);
  auto result = db.Query("EXPLAIN ANALYZE " + query_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every row the executor produced is attributed to exactly one box.
  ASSERT_FALSE(result->box_stats.empty());
  int64_t rows_out = 0;
  for (const auto& [box_id, stats] : result->box_stats) {
    rows_out += stats.rows_out;
  }
  EXPECT_EQ(rows_out, result->exec_stats.rows_produced);

  EXPECT_NE(result->analyze_report.find("EXPLAIN ANALYZE"),
            std::string::npos);
  EXPECT_NE(result->analyze_report.find("act_rows="), std::string::npos);
  EXPECT_NE(result->analyze_report.find("est_rows="), std::string::npos);
  EXPECT_NE(result->analyze_report.find("rule fires:"), std::string::npos);
  // The report is also the result table, one line per row.
  EXPECT_GT(result->table.num_rows(), 0);
}

TEST_F(ObsQueryTest, PlainExplainSkipsExecution) {
  Database db;
  Populate(&db);
  auto result = db.Query("EXPLAIN " + query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->box_stats.empty());
  EXPECT_EQ(result->exec_stats.rows_produced, 0);
  EXPECT_NE(result->analyze_report.find("est_rows="), std::string::npos);
  EXPECT_EQ(result->analyze_report.find("act_rows="), std::string::npos);
}

TEST_F(ObsQueryTest, RuleFiresArePhaseTagged) {
  Database db;
  Populate(&db);
  QueryOptions options(ExecutionStrategy::kMagic);
  auto result = db.Query(query_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rule_fires.empty());
  bool saw_phase1 = false;
  int64_t total = 0;
  for (const RuleFireStats& f : result->rule_fires) {
    EXPECT_FALSE(f.phase.empty());
    EXPECT_FALSE(f.rule.empty());
    if (f.phase == "phase1") saw_phase1 = true;
    total += f.fires;
  }
  EXPECT_TRUE(saw_phase1);
  EXPECT_EQ(total, result->rewrite_applications);
}

TEST_F(ObsQueryTest, CountersAreDeterministicAcrossIdenticalRuns) {
  std::string dumps[2];
  for (int run = 0; run < 2; ++run) {
    Database db;
    Populate(&db);
    MetricsRegistry metrics;
    QueryOptions options(ExecutionStrategy::kMagic);
    options.metrics = &metrics;
    auto result = db.Query(query_, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto explained = db.Query("EXPLAIN ANALYZE " + query_, options);
    ASSERT_TRUE(explained.ok()) << explained.status().ToString();
    dumps[run] = metrics.ToString();
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_FALSE(dumps[0].empty());
  EXPECT_NE(dumps[0].find("query.executions 2"), std::string::npos);
}

TEST_F(ObsQueryTest, DisabledTracerLeavesCountersUnchanged) {
  // Instrumentation must not alter the engine's observable behavior: the
  // deterministic work counters are identical with tracing on and off.
  ExecStats stats[2];
  for (int run = 0; run < 2; ++run) {
    Database db;
    Populate(&db);
    Tracer tracer(run == 1);
    QueryOptions options(ExecutionStrategy::kMagic);
    options.tracer = &tracer;
    auto result = db.Query(query_, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    stats[run] = result->exec_stats;
  }
  EXPECT_EQ(stats[0].TotalWork(), stats[1].TotalWork());
  EXPECT_EQ(stats[0].rows_produced, stats[1].rows_produced);
  EXPECT_EQ(stats[0].cache_hits, stats[1].cache_hits);
  EXPECT_EQ(stats[0].cache_misses, stats[1].cache_misses);
}

}  // namespace
}  // namespace starmagic
