// The sys.* virtual system-table schema: registry contents, snapshot
// semantics (per-query, self-excluding, governor-charged), read-only
// enforcement, reconciliation of every table against the live state it
// mirrors, parallel determinism, the magic-sets acceptance query over
// system tables, and the dogfooded shell renderers (byte-identical to the
// classic bespoke formatters).

#include "sys/system_tables.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "sys/sys_render.h"

namespace starmagic {
namespace {

// Runs one introspection query the way the shell's dot-commands do:
// internal (not logged, no metrics writes, unlimited enforcement) with the
// given registry attached as the read source.
Table SysQuery(Database* db, const std::string& sql,
               MetricsRegistry* metrics = nullptr) {
  QueryOptions options;
  options.internal = true;
  options.metrics = metrics;
  auto r = db->Query(sql, options);
  EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
  return r.ok() ? std::move(r->table) : Table("empty", Schema());
}

int64_t IntCol(const Table& t, const Row& row, const char* name) {
  int col = t.schema().FindColumn(name);
  EXPECT_GE(col, 0) << name;
  return row[static_cast<size_t>(col)].int_value();
}

std::string StrCol(const Table& t, const Row& row, const char* name) {
  int col = t.schema().FindColumn(name);
  EXPECT_GE(col, 0) << name;
  const Value& v = row[static_cast<size_t>(col)];
  return v.kind() == ValueKind::kString ? v.string_value() : "";
}

// A small base schema so catalog-backed tables have content to mirror.
void SeedCatalog(Database* db) {
  ASSERT_TRUE(db->ExecuteScript(R"sql(
    CREATE TABLE emp (empno INTEGER, dept INTEGER, salary DOUBLE);
    INSERT INTO emp VALUES (1, 10, 100.0), (2, 10, 200.0), (3, 20, 300.0);
    CREATE TABLE dept (deptno INTEGER, name VARCHAR);
    INSERT INTO dept VALUES (10, 'eng'), (20, 'ops');
    CREATE INDEX emp_dept ON emp (dept);
    CREATE VIEW deptSal (dept, total) AS
      SELECT dept, SUM(salary) FROM emp GROUP BY dept;
    ANALYZE;
  )sql")
                  .ok());
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(SysNameTest, MatchesSysPrefixCaseInsensitively) {
  EXPECT_TRUE(IsSysTableName("sys.metrics"));
  EXPECT_TRUE(IsSysTableName("SYS.Metrics"));
  EXPECT_TRUE(IsSysTableName("Sys.x"));
  EXPECT_FALSE(IsSysTableName("sys."));       // no table part
  EXPECT_FALSE(IsSysTableName("sys"));        // no dot
  EXPECT_FALSE(IsSysTableName("system.x"));   // different schema
  EXPECT_FALSE(IsSysTableName("mysys.x"));
  EXPECT_FALSE(IsSysTableName(""));
}

TEST(SysRegistryTest, BuiltinsPresentAndNameSorted) {
  SystemTableRegistry registry;
  std::vector<const SystemTableDef*> tables = registry.Tables();
  ASSERT_EQ(tables.size(), 13u);
  for (size_t i = 1; i < tables.size(); ++i) {
    EXPECT_LT(tables[i - 1]->name, tables[i]->name);
  }
  for (const char* name :
       {"sys.metrics", "sys.histogram_buckets", "sys.query_log", "sys.tables",
        "sys.columns", "sys.indexes", "sys.table_stats", "sys.rewrite_rules",
        "sys.box_stats", "sys.plan_cache", "sys.settings", "sys.governor",
        "sys.active_queries"}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
  // Case-insensitive lookup; canonical names are lower-case.
  const SystemTableDef* def = registry.Find("SYS.METRICS");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->name, "sys.metrics");
}

std::vector<Row> FillDemo(const SysEngineState&) {
  return {Row{Value::Int(1)}, Row{Value::Int(2)}};
}

TEST(SysRegistryTest, RegisterValidatesPrefixAndDuplicates) {
  SystemTableRegistry registry;
  Schema schema;
  schema.AddColumn({"x", ColumnType::kInt});
  EXPECT_EQ(registry.Register("plain_name", schema, FillDemo).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("sys.metrics", schema, FillDemo).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(registry.Register("sys.demo", schema, FillDemo).ok());
  EXPECT_NE(registry.Find("sys.demo"), nullptr);
}

TEST(SysRegistryTest, ExtensionTableIsQueryable) {
  Database db;
  Schema schema;
  schema.AddColumn({"x", ColumnType::kInt});
  ASSERT_TRUE(db.system_tables()->Register("sys.demo", schema, FillDemo).ok());
  Table t = SysQuery(&db, "SELECT * FROM sys.demo WHERE x > 1");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.rows()[0][0].int_value(), 2);
}

// ---------------------------------------------------------------------------
// Schema reconciliation: every registered table is queryable and the result
// relation carries exactly the registry's schema.
// ---------------------------------------------------------------------------

TEST(SysSchemaTest, EveryTableScansWithItsRegisteredSchema) {
  Database db;
  SeedCatalog(&db);
  MetricsRegistry metrics;
  for (const SystemTableDef* def : db.system_tables()->Tables()) {
    Table t = SysQuery(&db, StrCat("SELECT * FROM ", def->name), &metrics);
    ASSERT_EQ(t.schema().num_columns(), def->schema.num_columns()) << def->name;
    for (int i = 0; i < def->schema.num_columns(); ++i) {
      EXPECT_EQ(t.schema().column(i).name, def->schema.column(i).name)
          << def->name;
    }
    // Result schemas are display-inferred from values, so reconcile types
    // by checking every value is storable in the registered column type.
    for (const Row& row : t.rows()) {
      ASSERT_EQ(static_cast<int>(row.size()), def->schema.num_columns())
          << def->name;
      for (int i = 0; i < def->schema.num_columns(); ++i) {
        EXPECT_TRUE(ValueMatchesType(row[static_cast<size_t>(i)],
                                     def->schema.column(i).type))
            << def->name << "." << def->schema.column(i).name;
      }
    }
  }
}

// The acceptance query, end to end.
TEST(SysSchemaTest, SelectNameValueFromSysMetricsWorks) {
  Database db;
  MetricsRegistry metrics;
  metrics.counter("demo.counter")->Add(7);
  Table t = SysQuery(&db, "SELECT name, value FROM sys.metrics", &metrics);
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.rows()[0][0].string_value(), "demo.counter");
  EXPECT_EQ(t.rows()[0][1].int_value(), 7);
}

// ---------------------------------------------------------------------------
// Row reconciliation per table.
// ---------------------------------------------------------------------------

TEST(SysReconcileTest, MetricsRowsMirrorRegistryCountersThenHistograms) {
  Database db;
  SeedCatalog(&db);
  MetricsRegistry metrics;
  QueryOptions opts;
  opts.metrics = &metrics;
  ASSERT_TRUE(db.Query("SELECT * FROM emp WHERE dept = 10", opts).ok());

  Table t = SysQuery(&db, "SELECT * FROM sys.metrics", &metrics);
  size_t expected =
      metrics.counters().size() + metrics.histograms().size();
  ASSERT_EQ(static_cast<size_t>(t.num_rows()), expected);
  // Counters first then histograms, each block name-sorted — the registry
  // dump order.
  size_t i = 0;
  for (const auto& [name, counter] : metrics.counters()) {
    EXPECT_EQ(StrCol(t, t.rows()[i], "name"), name);
    EXPECT_EQ(StrCol(t, t.rows()[i], "kind"), "counter");
    EXPECT_EQ(IntCol(t, t.rows()[i], "value"), counter.value());
    ++i;
  }
  for (const auto& [name, h] : metrics.histograms()) {
    EXPECT_EQ(StrCol(t, t.rows()[i], "name"), name);
    EXPECT_EQ(StrCol(t, t.rows()[i], "kind"), "histogram");
    EXPECT_EQ(IntCol(t, t.rows()[i], "value"), h.count());
    ++i;
  }
}

TEST(SysReconcileTest, HistogramBucketCountsSumToHistogramCount) {
  Database db;
  MetricsRegistry metrics;
  metrics.histogram("demo.h")->Observe(1);
  metrics.histogram("demo.h")->Observe(3);
  metrics.histogram("demo.h")->Observe(900);
  Table t = SysQuery(&db, "SELECT * FROM sys.histogram_buckets", &metrics);
  int64_t total = 0;
  for (const Row& row : t.rows()) {
    EXPECT_EQ(StrCol(t, row, "name"), "demo.h");
    total += IntCol(t, row, "count");
  }
  EXPECT_EQ(total, 3);
}

TEST(SysReconcileTest, QueryLogRowsMirrorEntries) {
  Database db;
  SeedCatalog(&db);
  ASSERT_TRUE(db.Query("SELECT * FROM emp").ok());
  ASSERT_FALSE(db.Query("SELECT * FROM no_such_table").ok());  // logged too

  Table t = SysQuery(&db, "SELECT * FROM sys.query_log");
  std::vector<const QueryLogEntry*> entries = db.query_log()->Entries();
  ASSERT_EQ(static_cast<size_t>(t.num_rows()), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(IntCol(t, t.rows()[i], "id"), entries[i]->id);
    EXPECT_EQ(StrCol(t, t.rows()[i], "sql"), entries[i]->sql);
    EXPECT_EQ(StrCol(t, t.rows()[i], "status"), entries[i]->status);
    EXPECT_EQ(IntCol(t, t.rows()[i], "rows"), entries[i]->rows);
    EXPECT_EQ(IntCol(t, t.rows()[i], "total_work"), entries[i]->total_work);
  }
}

// Snapshot-then-log: a query over sys.query_log sees every prior query but
// never itself; the next query sees it.
TEST(SysReconcileTest, QueryLogSnapshotExcludesTheObservingQuery) {
  Database db;
  auto r1 = db.Query("SELECT * FROM sys.query_log");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->table.num_rows(), 0);

  auto r2 = db.Query("SELECT * FROM sys.query_log");
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->table.num_rows(), 1);
  EXPECT_NE(StrCol(r2->table, r2->table.rows()[0], "sql")
                .find("sys.query_log"),
            std::string::npos);
}

// Unlike sys.query_log (snapshot-then-log excludes the observer),
// sys.active_queries includes the observing query: it is in flight at its
// own snapshot, which is exactly what "active" means. Internal queries are
// never registered, so the shell dashboard does not watch itself.
TEST(SysReconcileTest, ActiveQueriesSeesTheRunningQueryButNotInternals) {
  Database db;
  auto r = db.Query("SELECT id, sql, phase FROM sys.active_queries");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->table.num_rows(), 1);
  EXPECT_NE(StrCol(r->table, r->table.rows()[0], "sql")
                .find("sys.active_queries"),
            std::string::npos);
  // The sys snapshot materializes when the optimizer first resolves the
  // table name, so the self-observation is taken mid-optimization.
  EXPECT_EQ(StrCol(r->table, r->table.rows()[0], "phase"), "optimize");

  Table internal = SysQuery(&db, "SELECT * FROM sys.active_queries");
  EXPECT_EQ(internal.num_rows(), 0);
  EXPECT_EQ(db.progress()->active_count(), 0);
}

TEST(SysReconcileTest, ActiveQueriesRespectsProgressToggle) {
  Database db;
  db.EnableProgressTracking(false);
  auto r = db.Query("SELECT * FROM sys.active_queries");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 0);
  db.EnableProgressTracking(true);
  r = db.Query("SELECT * FROM sys.active_queries");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 1);
}

// The HTTP endpoint path: SnapshotSysTable materializes a registered table
// against live state without running SQL, and rejects unknown names.
TEST(SysSnapshotTest, SnapshotSysTableMirrorsRegisteredTables) {
  Database db;
  SeedCatalog(&db);
  QueryOptions options;
  options.internal = true;

  auto snapshot = db.SnapshotSysTable("sys.tables", options);
  ASSERT_TRUE(snapshot.ok());
  Table queried = SysQuery(&db, "SELECT * FROM sys.tables");
  ASSERT_EQ(snapshot->num_rows(), queried.num_rows());

  EXPECT_EQ(db.SnapshotSysTable("sys.nope", options).status().code(),
            StatusCode::kNotFound);
}

TEST(SysReconcileTest, TablesColumnsIndexesAndStatsMirrorCatalog) {
  Database db;
  SeedCatalog(&db);

  Table tables = SysQuery(&db, "SELECT * FROM sys.tables");
  std::map<std::string, std::string> kind_by_name;
  for (const Row& row : tables.rows()) {
    kind_by_name[StrCol(tables, row, "name")] = StrCol(tables, row, "kind");
  }
  EXPECT_EQ(kind_by_name["emp"], "table");
  EXPECT_EQ(kind_by_name["dept"], "table");
  EXPECT_EQ(kind_by_name["deptSal"], "view");  // views keep their spelling
  EXPECT_EQ(kind_by_name["sys.metrics"], "system");
  EXPECT_EQ(kind_by_name.size(),
            db.catalog()->TableNames().size() +
                db.catalog()->ViewNames().size() +
                db.system_tables()->size());

  Table columns = SysQuery(
      &db, "SELECT * FROM sys.columns WHERE table_name = 'emp'");
  ASSERT_EQ(columns.num_rows(), 3);
  EXPECT_EQ(StrCol(columns, columns.rows()[0], "name"), "empno");
  EXPECT_EQ(IntCol(columns, columns.rows()[2], "ordinal"), 2);

  Table indexes = SysQuery(&db, "SELECT * FROM sys.indexes");
  ASSERT_EQ(indexes.num_rows(), 1);
  EXPECT_EQ(StrCol(indexes, indexes.rows()[0], "name"), "emp_dept");
  EXPECT_EQ(StrCol(indexes, indexes.rows()[0], "table_name"), "emp");
  EXPECT_EQ(StrCol(indexes, indexes.rows()[0], "columns"), "dept");

  Table stats = SysQuery(
      &db, "SELECT * FROM sys.table_stats WHERE table_name = 'emp'");
  ASSERT_EQ(stats.num_rows(), 3);  // one row per analyzed column
  for (const Row& row : stats.rows()) {
    EXPECT_EQ(IntCol(stats, row, "row_count"), 3);
    EXPECT_EQ(IntCol(stats, row, "version"),
              IntCol(stats, row, "last_analyze_version"));
  }
}

TEST(SysReconcileTest, SettingsReportTheObservingQueryOptions) {
  Database db;
  QueryOptions options;
  options.internal = true;
  options.num_threads = 3;
  options.morsel_size = 17;
  auto r = db.Query("SELECT * FROM sys.settings", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r->table;
  std::map<std::string, std::pair<std::string, std::string>> rows;
  for (const Row& row : t.rows()) {
    rows[StrCol(t, row, "name")] = {StrCol(t, row, "value"),
                                    StrCol(t, row, "source")};
  }
  EXPECT_EQ(rows["num_threads"].first, "3");
  EXPECT_EQ(rows["num_threads"].second, "QueryOptions");
  EXPECT_EQ(rows["morsel_size"].first, "17");
  EXPECT_EQ(rows["internal"].first, "true");
  EXPECT_EQ(rows["strategy"].first, StrategyName(ExecutionStrategy::kMagic));
  EXPECT_EQ(rows["STARMAGIC_THREADS"].second, "env");
}

TEST(SysReconcileTest, GovernorRowsReportBudgetNameSorted) {
  Database db;
  QueryOptions options;
  options.internal = true;
  options.budget.max_memory_bytes = 123456;
  options.budget.deadline_ms = 250;
  auto r = db.Query("SELECT * FROM sys.governor", options);
  ASSERT_TRUE(r.ok());
  const Table& t = r->table;
  ASSERT_EQ(t.num_rows(), 10);
  for (size_t i = 1; i < t.rows().size(); ++i) {
    EXPECT_LT(StrCol(t, t.rows()[i - 1], "name"), StrCol(t, t.rows()[i], "name"));
  }
  ResourceBudget round_trip = BudgetFromGovernorRows(t);
  EXPECT_EQ(round_trip.max_memory_bytes, 123456);
  EXPECT_EQ(round_trip.deadline_ms, 250);
  EXPECT_EQ(round_trip.ToString(), options.budget.ToString());
}

// ---------------------------------------------------------------------------
// Read-only enforcement.
// ---------------------------------------------------------------------------

TEST(SysReadOnlyTest, AllWritePathsReturnTypedReadOnlyError) {
  Database db;
  SeedCatalog(&db);
  const char* statements[] = {
      "CREATE TABLE sys.mine (x INTEGER)",
      "CREATE VIEW sys.v (x) AS SELECT empno FROM emp",
      "CREATE INDEX sys.idx ON emp (dept)",
      "CREATE INDEX emp_i2 ON sys.metrics (name)",
      "DROP TABLE sys.metrics",
      "DROP VIEW sys.metrics",
      "INSERT INTO sys.metrics VALUES ('x')",
      "UPDATE sys.metrics SET name = 'x'",
      "DELETE FROM sys.metrics",
      "ANALYZE sys.metrics",
  };
  for (const char* sql : statements) {
    Status s = db.Execute(sql);
    EXPECT_EQ(s.code(), StatusCode::kReadOnly) << sql << "\n" << s.ToString();
  }
  // The write-path (non-const) catalog lookup never resolves sys names:
  // mutation code cannot reach a snapshot even by accident.
  EXPECT_EQ(db.catalog()->GetTable("sys.metrics"), nullptr);
}

// ---------------------------------------------------------------------------
// Governor accounting of snapshots.
// ---------------------------------------------------------------------------

TEST(SysGovernorTest, SnapshotBytesAreChargedAndInternalIsExempt) {
  Database db;
  SeedCatalog(&db);

  QueryOptions generous;
  generous.budget.max_memory_bytes = 64 * 1024 * 1024;
  auto ok = db.Query("SELECT * FROM sys.columns", generous);
  ASSERT_TRUE(ok.ok());
  EXPECT_GT(ok->governor.peak_bytes, 0);

  QueryOptions tiny;
  tiny.budget.max_memory_bytes = 1;
  auto aborted = db.Query("SELECT * FROM sys.columns", tiny);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kResourceExhausted);

  // The shell's canned queries run internal: observation must never abort
  // under the session budget it is displaying.
  tiny.internal = true;
  EXPECT_TRUE(db.Query("SELECT * FROM sys.columns", tiny).ok());
}

// ---------------------------------------------------------------------------
// Magic-sets over system tables (the PR acceptance query).
// ---------------------------------------------------------------------------

TEST(SysMagicTest, BoundViewOverSysBoxStatsTriggersEmstAndIsVisible) {
  Database db;
  SeedCatalog(&db);
  // Populate sys.box_stats (retained per-box stats of the last ANALYZE).
  ASSERT_TRUE(
      db.Query("EXPLAIN ANALYZE SELECT e.empno, d.name FROM emp e, dept d "
               "WHERE e.dept = d.deptno")
          .ok());
  ASSERT_GT(SysQuery(&db, "SELECT * FROM sys.box_stats").num_rows(), 0);

  // A user view with aggregation over two system tables; binding its
  // group-by column VIA A JOIN is the paper's magic-sets shape. (A constant
  // predicate `v.kind = 'Select'` would be handled by phase-1 predicate
  // pushdown before EMST ever looks at the view, so the binding comes from
  // a selective driver table instead — the Figure-1 shape.)
  ASSERT_TRUE(db.Execute(
                    "CREATE VIEW boxRollup (kind, boxes, total_rows) AS "
                    "SELECT b.kind, COUNT(*), SUM(b.act_rows) "
                    "FROM sys.box_stats b, sys.tables t "
                    "WHERE t.name = 'sys.box_stats' GROUP BY b.kind")
                  .ok());
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE kind_pick (kname VARCHAR, pick INTEGER);"
                    "INSERT INTO kind_pick VALUES ('SELECT', 1), "
                    "('GROUPBY', 0), ('BASETABLE', 0);"
                    "ANALYZE")
                  .ok());
  QueryOptions magic(ExecutionStrategy::kMagic);
  auto r = db.Query(
      "SELECT k.kname, v.boxes, v.total_rows FROM kind_pick k, boxRollup v "
      "WHERE k.kname = v.kind AND k.pick = 1",
      magic);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table.num_rows(), 1);  // exactly the SELECT rollup row
  EXPECT_TRUE(r->emst_applied);
  int64_t emst_fires = 0;
  for (const RuleFireStats& f : r->rule_fires) {
    if (f.rule == "emst") emst_fires += f.fires;
  }
  EXPECT_GT(emst_fires, 0);

  // Visible in EXPLAIN...
  auto explained = db.Query(
      "EXPLAIN SELECT k.kname, v.boxes FROM kind_pick k, boxRollup v "
      "WHERE k.kname = v.kind AND k.pick = 1",
      magic);
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->analyze_report.find("emst"), std::string::npos)
      << explained->analyze_report;

  // ...and in sys.rewrite_rules (cumulative, rule-name sorted).
  Table rules = SysQuery(&db, "SELECT * FROM sys.rewrite_rules");
  ASSERT_GT(rules.num_rows(), 0);
  bool found = false;
  for (size_t i = 0; i < rules.rows().size(); ++i) {
    if (i > 0) {
      EXPECT_LT(StrCol(rules, rules.rows()[i - 1], "rule"),
                StrCol(rules, rules.rows()[i], "rule"));
    }
    if (StrCol(rules, rules.rows()[i], "rule") == "emst") {
      found = true;
      EXPECT_GT(IntCol(rules, rules.rows()[i], "fires"), 0);
      EXPECT_GE(IntCol(rules, rules.rows()[i], "attempts"),
                IntCol(rules, rules.rows()[i], "fires"));
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE over a join of system tables reconciles exactly.
// ---------------------------------------------------------------------------

TEST(SysAnalyzeTest, JoinOfQueryLogAndMetricsReconcilesRowsOut) {
  Database db;
  SeedCatalog(&db);
  MetricsRegistry metrics;
  QueryOptions opts;
  opts.metrics = &metrics;
  ASSERT_TRUE(db.Query("SELECT * FROM emp", opts).ok());

  auto r = db.Query(
      "EXPLAIN ANALYZE SELECT q.id, m.name FROM sys.query_log q, "
      "sys.metrics m WHERE q.rows = m.value",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int64_t sum_rows_out = 0;
  for (const auto& [box_id, stats] : r->box_stats) {
    sum_rows_out += stats.rows_out;
  }
  EXPECT_EQ(sum_rows_out, r->exec_stats.rows_produced);

  // The analyze's per-box rows are retained and queryable: total act_rows
  // in sys.box_stats reproduces the run's rows_produced.
  Table boxes = SysQuery(&db, "SELECT * FROM sys.box_stats");
  int64_t act_total = 0;
  for (const Row& row : boxes.rows()) act_total += IntCol(boxes, row, "act_rows");
  EXPECT_EQ(act_total, r->exec_stats.rows_produced);
}

// ---------------------------------------------------------------------------
// Parallel determinism: byte-identical results at 1, 2, and 8 threads.
// ---------------------------------------------------------------------------

TEST(SysParallelTest, SnapshotScansAreByteIdenticalAcrossThreadCounts) {
  Database db;
  SeedCatalog(&db);
  MetricsRegistry metrics;
  QueryOptions warm;
  warm.metrics = &metrics;
  ASSERT_TRUE(db.Query("SELECT * FROM emp WHERE dept = 10", warm).ok());

  const char* queries[] = {
      "SELECT * FROM sys.metrics",
      "SELECT * FROM sys.rewrite_rules",
      "SELECT c.table_name, c.name, t.kind FROM sys.columns c, sys.tables t "
      "WHERE c.table_name = t.name AND t.kind = 'system'",
  };
  for (const char* sql : queries) {
    std::string baseline;
    for (int threads : {1, 2, 8}) {
      QueryOptions options;
      options.internal = true;
      options.metrics = &metrics;
      options.num_threads = threads;
      options.morsel_size = 1;  // force the parallel paths on small tables
      auto r = db.Query(sql, options);
      ASSERT_TRUE(r.ok()) << sql << " threads=" << threads;
      std::string rendered = r->table.ToString(100000);
      if (threads == 1) {
        baseline = rendered;
      } else {
        EXPECT_EQ(rendered, baseline) << sql << " threads=" << threads;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dogfooding: the shell renderers reproduce the classic formatter bytes
// from sys.* rows.
// ---------------------------------------------------------------------------

class SysRenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SeedCatalog(&db_);
    QueryOptions opts;
    opts.metrics = &metrics_;
    ASSERT_TRUE(db_.Query("SELECT * FROM emp WHERE dept = 10", opts).ok());
    ASSERT_TRUE(
        db_.Query("SELECT e.empno FROM emp e, dept d WHERE e.dept = d.deptno",
                  opts)
            .ok());
    ASSERT_FALSE(db_.Query("SELECT * FROM missing", opts).ok());  // error row
  }

  Database db_;
  MetricsRegistry metrics_;
};

TEST_F(SysRenderTest, MetricsDumpMatchesRegistryToString) {
  Table t = SysQuery(&db_, "SELECT * FROM sys.metrics", &metrics_);
  EXPECT_EQ(RenderMetricsDump(t), metrics_.ToString());
}

TEST_F(SysRenderTest, QueryLogRenderMatchesDump) {
  Table t = SysQuery(&db_, "SELECT * FROM sys.query_log", &metrics_);
  EXPECT_EQ(RenderQueryLog(t), db_.query_log()->Dump());
  EXPECT_EQ(RenderQueryLog(t, 2), db_.query_log()->Dump(2));
  EXPECT_EQ(RenderQueryLog(t, 1), db_.query_log()->Dump(1));
}

TEST_F(SysRenderTest, EmptyQueryLogRendersPlaceholder) {
  Database fresh;
  Table t = SysQuery(&fresh, "SELECT * FROM sys.query_log");
  EXPECT_EQ(RenderQueryLog(t), "(query log empty)\n");
  EXPECT_EQ(RenderQueryLog(t), fresh.query_log()->Dump());
}

TEST_F(SysRenderTest, QErrorRenderMatchesQErrorReport) {
  Table t = SysQuery(&db_,
                     "SELECT * FROM sys.metrics "
                     "WHERE kind = 'histogram' AND name LIKE 'qerror.%'",
                     &metrics_);
  EXPECT_EQ(RenderQErrorReport(t), QErrorReport(metrics_));

  MetricsRegistry empty;
  Table none = SysQuery(&db_,
                        "SELECT * FROM sys.metrics "
                        "WHERE kind = 'histogram' AND name LIKE 'qerror.%'",
                        &empty);
  EXPECT_EQ(RenderQErrorReport(none), QErrorReport(empty));
}

TEST_F(SysRenderTest, SysListCoversEveryRegisteredTable) {
  Table t = SysQuery(&db_,
                     "SELECT table_name, name, type FROM sys.columns "
                     "WHERE table_name LIKE 'sys.%'");
  std::string listing = RenderSysList(t);
  for (const SystemTableDef* def : db_.system_tables()->Tables()) {
    EXPECT_NE(listing.find(StrCat(def->name, "(")), std::string::npos)
        << def->name;
  }
}

}  // namespace
}  // namespace starmagic
