#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "qgm/builder.h"
#include "qgm/printer.h"
#include "rewrite/constant_folding.h"
#include "rewrite/correlate_rule.h"
#include "rewrite/distinct_pullup.h"
#include "rewrite/engine.h"
#include "rewrite/merge_rule.h"
#include "rewrite/projection_pruning.h"
#include "rewrite/pushdown.h"
#include "rewrite/redundant_join.h"
#include "sql/parser.h"

namespace starmagic {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .CreateTable("emp", Schema({{"empno", ColumnType::kInt},
                                                {"dept", ColumnType::kInt},
                                                {"sal", ColumnType::kDouble}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .CreateTable("dept", Schema({{"deptno", ColumnType::kInt},
                                                 {"dname", ColumnType::kString}}))
                    .ok());
    catalog_.GetTable("emp")->SetPrimaryKey({0});
    catalog_.GetTable("dept")->SetPrimaryKey({0});
  }

  std::unique_ptr<QueryGraph> Build(const std::string& sql) {
    auto blob = ParseQuery(sql);
    EXPECT_TRUE(blob.ok()) << blob.status().ToString();
    QgmBuilder builder(&catalog_);
    auto g = builder.Build(**blob);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(*g);
  }

  // Runs a single rule to fixpoint.
  int RunRule(QueryGraph* g, std::unique_ptr<RewriteRule> rule) {
    RewriteEngine engine;
    engine.AddRule(std::move(rule));
    RewriteContext ctx;
    ctx.graph = g;
    ctx.catalog = &catalog_;
    auto r = engine.Run(&ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->total_applications : -1;
  }

  Catalog catalog_;
};

TEST_F(RewriteTest, MergeFlattensNestedSelect) {
  auto g = Build(
      "SELECT x.empno FROM (SELECT empno, sal FROM emp WHERE sal > 5) x "
      "WHERE x.empno < 100");
  int before = g->NumBoxes();
  int fired = RunRule(g.get(), std::make_unique<MergeRule>());
  EXPECT_GE(fired, 1);
  EXPECT_LT(g->NumBoxes(), before);
  // Both predicates now live in the top box.
  EXPECT_EQ(g->top()->predicates().size(), 2u);
  EXPECT_TRUE(g->Validate().ok());
}

TEST_F(RewriteTest, MergeSkipsDistinctChild) {
  auto g = Build(
      "SELECT x.dept FROM (SELECT DISTINCT dept FROM emp) x");
  int before = g->NumBoxes();
  RunRule(g.get(), std::make_unique<MergeRule>());
  EXPECT_EQ(g->NumBoxes(), before);  // DISTINCT child must survive
}

TEST_F(RewriteTest, MergeSkipsSharedChild) {
  ViewDefinition v;
  v.name = "lowpaid";
  v.body_sql = "SELECT empno, dept FROM emp WHERE sal < 10";
  ASSERT_TRUE(catalog_.CreateView(std::move(v)).ok());
  auto g = Build(
      "SELECT a.empno FROM lowpaid a, lowpaid b WHERE a.empno = b.empno");
  // The view box is shared by two quantifiers; merge must leave it alone.
  Box* view_box = nullptr;
  for (Box* b : g->boxes()) {
    if (b->label() == "LOWPAID") view_box = b;
  }
  ASSERT_NE(view_box, nullptr);
  RunRule(g.get(), std::make_unique<MergeRule>());
  EXPECT_NE(g->GetBox(view_box->id()), nullptr);
}

TEST_F(RewriteTest, LocalPushdownMovesPredicateIntoView) {
  auto g = Build(
      "SELECT x.dept, x.avgsal FROM "
      "(SELECT dept, AVG(sal) AS avgsal FROM emp GROUP BY dept) x "
      "WHERE x.dept = 7");
  RunRule(g.get(), std::make_unique<LocalPredicatePushdownRule>());
  // The predicate moved through the groupby into the T1 select box.
  EXPECT_TRUE(g->top()->predicates().empty());
  bool found = false;
  for (Box* b : g->boxes()) {
    if (b->kind() != BoxKind::kSelect) continue;
    for (const ExprPtr& p : b->predicates()) {
      if (p->ToString().find("= 7") != std::string::npos &&
          b != g->top()) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << PrintGraph(*g);
  EXPECT_TRUE(g->Validate().ok());
}

TEST_F(RewriteTest, PushdownRefusesAggregateColumn) {
  auto g = Build(
      "SELECT x.dept FROM "
      "(SELECT dept, AVG(sal) AS avgsal FROM emp GROUP BY dept) x "
      "WHERE x.avgsal > 100");
  RunRule(g.get(), std::make_unique<LocalPredicatePushdownRule>());
  // A predicate on an aggregate output cannot move below the groupby, but
  // it can move from the top box into the triplet's T3 select box.
  Box* groupby = nullptr;
  for (Box* b : g->boxes()) {
    if (b->kind() == BoxKind::kGroupBy) groupby = b;
  }
  ASSERT_NE(groupby, nullptr);
  Box* t1 = groupby->quantifiers()[0]->input;
  EXPECT_TRUE(t1->predicates().empty()) << PrintGraph(*g);
}

TEST_F(RewriteTest, PushdownIntoUnionBranches) {
  auto g = Build(
      "SELECT x.empno FROM "
      "(SELECT empno, dept FROM emp UNION ALL "
      " SELECT deptno, deptno FROM dept) x "
      "WHERE x.empno = 3");
  RunRule(g.get(), std::make_unique<LocalPredicatePushdownRule>());
  EXPECT_TRUE(g->top()->predicates().empty());
  int branches_with_pred = 0;
  for (Box* b : g->boxes()) {
    if (b->kind() == BoxKind::kSelect && b != g->top() &&
        !b->predicates().empty()) {
      ++branches_with_pred;
    }
  }
  EXPECT_EQ(branches_with_pred, 2) << PrintGraph(*g);
}

TEST_F(RewriteTest, DistinctPullupInfersKeysAndDropsRedundantDistinct) {
  auto g = Build("SELECT DISTINCT empno, dept FROM emp");
  ASSERT_TRUE(g->top()->enforce_distinct());
  RunRule(g.get(), std::make_unique<DistinctPullupRule>());
  // empno is the primary key: the projection is duplicate-free already.
  EXPECT_FALSE(g->top()->enforce_distinct());
  EXPECT_TRUE(g->top()->duplicate_free());
}

TEST_F(RewriteTest, DistinctPullupKeepsNecessaryDistinct) {
  auto g = Build("SELECT DISTINCT dept FROM emp");
  RunRule(g.get(), std::make_unique<DistinctPullupRule>());
  EXPECT_TRUE(g->top()->enforce_distinct());  // dept is not a key
  EXPECT_TRUE(g->top()->duplicate_free());    // but the result is dedup'ed
}

TEST_F(RewriteTest, DistinctPullupMarksGroupByDupFree) {
  auto g = Build("SELECT dept, COUNT(*) FROM emp GROUP BY dept");
  RunRule(g.get(), std::make_unique<DistinctPullupRule>());
  for (Box* b : g->boxes()) {
    if (b->kind() == BoxKind::kGroupBy) {
      EXPECT_TRUE(b->duplicate_free());
      ASSERT_TRUE(b->has_unique_key());
      EXPECT_EQ(b->unique_key(), std::vector<int>{0});
    }
  }
}

TEST_F(RewriteTest, RedundantSelfJoinEliminated) {
  auto g = Build(
      "SELECT a.sal FROM emp a, emp b "
      "WHERE a.empno = b.empno AND b.sal > 10");
  // Needs key knowledge first.
  RunRule(g.get(), std::make_unique<DistinctPullupRule>());
  int fired = RunRule(g.get(), std::make_unique<RedundantJoinRule>());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(g->top()->quantifiers().size(), 1u);
  EXPECT_TRUE(g->Validate().ok());
}

TEST_F(RewriteTest, RedundantJoinKeepsNonKeyEquality) {
  auto g = Build(
      "SELECT a.sal FROM emp a, emp b WHERE a.dept = b.dept");
  RunRule(g.get(), std::make_unique<DistinctPullupRule>());
  int fired = RunRule(g.get(), std::make_unique<RedundantJoinRule>());
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(g->top()->quantifiers().size(), 2u);
}

TEST_F(RewriteTest, ConstantFoldingSimplifies) {
  auto g = Build("SELECT empno FROM emp WHERE 1 + 1 = 2 AND sal > 2 * 3");
  RunRule(g.get(), std::make_unique<ConstantFoldingRule>());
  // "1+1=2" folds to TRUE and is removed; "2*3" folds into a literal.
  ASSERT_EQ(g->top()->predicates().size(), 1u);
  EXPECT_EQ(g->top()->predicates()[0]->ToString(
                [](int, int) { return std::string("sal"); }),
            "sal > 6");
}

TEST_F(RewriteTest, ProjectionPruningDropsUnusedColumns) {
  auto g = Build(
      "SELECT x.empno FROM "
      "(SELECT empno, dept, sal FROM emp WHERE sal > 1) x");
  Box* inner = g->top()->quantifiers()[0]->input;
  ASSERT_EQ(inner->NumOutputs(), 3);
  RunRule(g.get(), std::make_unique<ProjectionPruningRule>());
  // empno (used) is kept; the primary key column is empno too, so pruning
  // keeps it once; dept/sal go away.
  EXPECT_LT(inner->NumOutputs(), 3);
  EXPECT_TRUE(g->Validate().ok());
}

TEST_F(RewriteTest, CorrelateRulePushesJoinIntoView) {
  ViewDefinition v;
  v.name = "deptavg";
  v.column_names = {"dept", "avgsal"};
  v.body_sql = "SELECT dept, AVG(sal) FROM emp GROUP BY dept";
  ASSERT_TRUE(catalog_.CreateView(std::move(v)).ok());
  auto g = Build(
      "SELECT d.dname, v.avgsal FROM dept d, deptavg v "
      "WHERE d.deptno = v.dept");
  int fired = RunRule(g.get(), std::make_unique<CorrelateRule>());
  EXPECT_GE(fired, 1);
  // The join predicate left the top box and became a correlation inside
  // the view's T1 box.
  EXPECT_TRUE(g->top()->predicates().empty());
  int outer_qid = -1;
  for (const auto& q : g->top()->quantifiers()) {
    if (q->input->kind() == BoxKind::kBaseTable) outer_qid = q->id;
  }
  ASSERT_NE(outer_qid, -1);
  bool correlated = false;
  for (Box* b : g->boxes()) {
    if (b == g->top()) continue;
    for (const ExprPtr& p : b->predicates()) {
      if (p->References(outer_qid)) correlated = true;
    }
  }
  EXPECT_TRUE(correlated) << PrintGraph(*g);
  EXPECT_TRUE(g->Validate().ok());
}

TEST_F(RewriteTest, EngineRunsToFixpointWithAllRules) {
  auto g = Build(
      "SELECT x.empno FROM "
      "(SELECT empno, dept FROM emp WHERE sal > 1) x, dept d "
      "WHERE x.dept = d.deptno AND d.dname = 'Planning' AND 1 = 1");
  RewriteEngine engine;
  engine.AddRule(std::make_unique<ConstantFoldingRule>());
  engine.AddRule(std::make_unique<DistinctPullupRule>());
  engine.AddRule(std::make_unique<MergeRule>());
  engine.AddRule(std::make_unique<LocalPredicatePushdownRule>());
  engine.AddRule(std::make_unique<RedundantJoinRule>());
  engine.AddRule(std::make_unique<ProjectionPruningRule>());
  RewriteContext ctx;
  ctx.graph = g.get();
  ctx.catalog = &catalog_;
  auto r = engine.Run(&ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->total_applications, 0);
  EXPECT_TRUE(g->Validate().ok());
}

TEST_F(RewriteTest, EngineEnableDisableByName) {
  RewriteEngine engine;
  engine.AddRule(std::make_unique<MergeRule>());
  EXPECT_TRUE(engine.IsEnabled("merge"));
  EXPECT_TRUE(engine.SetEnabled("merge", false));
  EXPECT_FALSE(engine.IsEnabled("merge"));
  EXPECT_FALSE(engine.SetEnabled("no-such-rule", false));
  auto g = Build("SELECT x.empno FROM (SELECT empno FROM emp) x");
  RewriteContext ctx;
  ctx.graph = g.get();
  ctx.catalog = &catalog_;
  auto r = engine.Run(&ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total_applications, 0);  // disabled rule never fires
}

}  // namespace
}  // namespace starmagic
