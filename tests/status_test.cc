#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace starmagic {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::SemanticError("x").code(), StatusCode::kSemanticError);
  EXPECT_EQ(Status::ExecutionError("x").code(), StatusCode::kExecutionError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

namespace {
Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
Status UseHalf(int x, int* out) {
  SM_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}
}  // namespace

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace starmagic
