#include <gtest/gtest.h>

#include "engine/database.h"

namespace starmagic {
namespace {

class RecursiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE edge (src INTEGER, dst INTEGER);
      INSERT INTO edge VALUES (1,2),(2,3),(3,4),(2,5),(5,6),(10,11),(11,12);
      CREATE RECURSIVE VIEW tc (src, dst) AS
        SELECT src, dst FROM edge
        UNION
        SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src;
      ANALYZE;
    )sql")
                    .ok());
  }
  Database db_;
};

TEST_F(RecursiveTest, FullClosureIsCorrect) {
  auto r = db_.Query("SELECT COUNT(*) AS n FROM tc",
                     QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Reachability pairs: from 1: {2,3,4,5,6}; 2: {3,4,5,6}; 3:{4}; 5:{6};
  // 10:{11,12}; 11:{12}. Total 5+4+1+1+2+1 = 14.
  EXPECT_EQ(r->table.rows()[0][0].int_value(), 14);
}

TEST_F(RecursiveTest, BoundSourceAgreesAcrossStrategies) {
  const char* sql = "SELECT src, dst FROM tc WHERE src = 2 ORDER BY dst";
  auto orig = db_.Query(sql, QueryOptions(ExecutionStrategy::kOriginal));
  auto magic = db_.Query(sql, QueryOptions(ExecutionStrategy::kMagic));
  ASSERT_TRUE(orig.ok()) << orig.status().ToString();
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  ASSERT_EQ(orig->table.num_rows(), 4);  // 3, 4, 5, 6
  EXPECT_TRUE(Table::BagEquals(orig->table, magic->table));
}

TEST_F(RecursiveTest, MagicRestrictsTheFixpoint) {
  const char* sql = "SELECT dst FROM tc WHERE src = 10";
  auto orig = db_.Query(sql, QueryOptions(ExecutionStrategy::kOriginal));
  // On this tiny graph the cost comparison may legitimately keep the
  // original plan; force the transformation to observe the restriction.
  QueryOptions magic_options(ExecutionStrategy::kMagic);
  magic_options.pipeline.cost_compare = false;
  auto magic = db_.Query(sql, magic_options);
  ASSERT_TRUE(orig.ok() && magic.ok())
      << orig.status().ToString() << magic.status().ToString();
  ASSERT_EQ(magic->table.num_rows(), 2);  // 11, 12
  EXPECT_TRUE(Table::BagEquals(orig->table, magic->table));
  EXPECT_LT(magic->exec_stats.TotalWork(), orig->exec_stats.TotalWork());
}

TEST_F(RecursiveTest, BoundDestinationAlsoWorks) {
  const char* sql = "SELECT src FROM tc WHERE dst = 6 ORDER BY src";
  auto orig = db_.Query(sql, QueryOptions(ExecutionStrategy::kOriginal));
  auto magic = db_.Query(sql, QueryOptions(ExecutionStrategy::kMagic));
  ASSERT_TRUE(orig.ok() && magic.ok());
  ASSERT_EQ(orig->table.num_rows(), 3);  // 1, 2, 5 reach 6
  EXPECT_TRUE(Table::BagEquals(orig->table, magic->table));
}

TEST_F(RecursiveTest, MutualRecursionThroughTwoViews) {
  // even(x) <- x = 0;  even(x) <- odd(x-1);  odd(x) <- even(x-1)
  // over a numbers table 0..10.
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE num (n INTEGER);
    INSERT INTO num VALUES (0),(1),(2),(3),(4),(5),(6),(7),(8),(9),(10);
    CREATE RECURSIVE VIEW even (x) AS
      SELECT n FROM num WHERE n = 0
      UNION
      SELECT n.n FROM num n, odd o WHERE n.n = o.x + 1;
    CREATE RECURSIVE VIEW odd (x) AS
      SELECT n.n FROM num n, even e WHERE n.n = e.x + 1
      UNION
      SELECT n.n FROM num n, even e WHERE n.n = e.x + 1;
    ANALYZE;
  )sql")
                  .ok());
  auto r = db_.Query("SELECT x FROM even ORDER BY x",
                     QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table.num_rows(), 6);  // 0,2,4,6,8,10
  EXPECT_EQ(r->table.rows()[5][0].int_value(), 10);
}

TEST_F(RecursiveTest, AggregationThroughRecursionRejected) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE RECURSIVE VIEW badagg (src, n) AS "
                    "SELECT src, 1 FROM edge UNION "
                    "SELECT src, COUNT(*) FROM badagg GROUP BY src")
                  .ok());
  auto r = db_.Query("SELECT src FROM badagg",
                     QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(RecursiveTest, NegationThroughRecursionRejected) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE RECURSIVE VIEW badneg (src, dst) AS "
                    "SELECT src, dst FROM edge UNION "
                    "SELECT e.src, e.dst FROM edge e WHERE NOT EXISTS "
                    "(SELECT b.src FROM badneg b WHERE b.src = e.src)")
                  .ok());
  auto r = db_.Query("SELECT src FROM badneg",
                     QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(RecursiveTest, UnionAllRecursionRejectedAtBuild) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE RECURSIVE VIEW badall (src, dst) AS "
                    "SELECT src, dst FROM edge UNION ALL "
                    "SELECT t.src, e.dst FROM badall t, edge e "
                    "WHERE t.dst = e.src")
                  .ok());
  auto r = db_.Query("SELECT src FROM badall",
                     QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(RecursiveTest, JoinOfRecursiveViewWithBaseTable) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE label (node INTEGER, tag VARCHAR);
    INSERT INTO label VALUES (4, 'goal'), (6, 'goal'), (12, 'other');
    ANALYZE;
  )sql")
                  .ok());
  const char* sql =
      "SELECT t.dst, l.tag FROM tc t, label l "
      "WHERE t.dst = l.node AND t.src = 1 ORDER BY dst";
  auto orig = db_.Query(sql, QueryOptions(ExecutionStrategy::kOriginal));
  auto magic = db_.Query(sql, QueryOptions(ExecutionStrategy::kMagic));
  ASSERT_TRUE(orig.ok() && magic.ok())
      << orig.status().ToString() << magic.status().ToString();
  ASSERT_EQ(orig->table.num_rows(), 2);  // 4 and 6 reachable from 1
  EXPECT_TRUE(Table::BagEquals(orig->table, magic->table));
}

}  // namespace
}  // namespace starmagic
