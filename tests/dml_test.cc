#include <gtest/gtest.h>

#include <cstdio>

#include "catalog/table_io.h"
#include "engine/database.h"

namespace starmagic {
namespace {

class DmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE emp (empno INTEGER, name VARCHAR, dept INTEGER,
                        sal DOUBLE);
      INSERT INTO emp VALUES
        (1, 'alice', 10, 100.0), (2, 'bob', 10, 50.0),
        (3, 'carol', 20, 80.0), (4, NULL, NULL, NULL);
    )sql")
                    .ok());
  }

  int64_t Count(const std::string& where = "") {
    auto r = db_.Query("SELECT COUNT(*) AS n FROM emp" +
                           (where.empty() ? "" : " WHERE " + where),
                       QueryOptions(ExecutionStrategy::kOriginal));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->table.rows()[0][0].int_value() : -1;
  }

  Database db_;
};

TEST_F(DmlTest, UpdateWithWhere) {
  ASSERT_TRUE(db_.Execute("UPDATE emp SET sal = sal * 2 WHERE dept = 10").ok());
  auto r = db_.Query("SELECT sal FROM emp WHERE empno = 1",
                     QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->table.rows()[0][0].double_value(), 200.0);
  // The NULL-dept row was untouched (WHERE is UNKNOWN there).
  EXPECT_EQ(Count("sal IS NULL"), 1);
}

TEST_F(DmlTest, UpdateMultipleColumnsUsesPreUpdateValues) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE p (a INTEGER, b INTEGER);
    INSERT INTO p VALUES (1, 2);
    UPDATE p SET a = b, b = a;
  )sql")
                  .ok());
  auto r = db_.Query("SELECT a, b FROM p",
                     QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_TRUE(r.ok());
  // Both right-hand sides see the pre-update row: a=2, b=1 (swap).
  EXPECT_EQ(r->table.rows()[0][0].int_value(), 2);
  EXPECT_EQ(r->table.rows()[0][1].int_value(), 1);
}

TEST_F(DmlTest, UpdateWithoutWhereTouchesAllRows) {
  ASSERT_TRUE(db_.Execute("UPDATE emp SET dept = 99").ok());
  EXPECT_EQ(Count("dept = 99"), 4);
}

TEST_F(DmlTest, UpdateTypeMismatchRejected) {
  EXPECT_FALSE(db_.Execute("UPDATE emp SET dept = 'nope'").ok());
  EXPECT_FALSE(db_.Execute("UPDATE emp SET nosuch = 1").ok());
  EXPECT_FALSE(db_.Execute("UPDATE nosuch SET dept = 1").ok());
}

TEST_F(DmlTest, DeleteWithWhere) {
  ASSERT_TRUE(db_.Execute("DELETE FROM emp WHERE sal < 90").ok());
  EXPECT_EQ(Count(), 2);  // alice (100) and the all-NULL row survive
}

TEST_F(DmlTest, DeleteAll) {
  ASSERT_TRUE(db_.Execute("DELETE FROM emp").ok());
  EXPECT_EQ(Count(), 0);
}

TEST_F(DmlTest, SubqueryInDmlRejected) {
  auto s = db_.Execute(
      "DELETE FROM emp WHERE sal > (SELECT AVG(sal) FROM emp)");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotSupported);
}

TEST(CsvTest, SplitHandlesQuotesAndEscapes) {
  auto fields = SplitCsvLine("1,\"a,b\",\"say \"\"hi\"\"\",,\"\"");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 5u);
  EXPECT_EQ((*fields)[0], "1");
  EXPECT_EQ((*fields)[1], std::string("\x01") + "a,b");
  EXPECT_EQ((*fields)[2], std::string("\x01") + "say \"hi\"");
  EXPECT_EQ((*fields)[3], "");                   // unquoted empty -> NULL
  EXPECT_EQ((*fields)[4], std::string("\x01"));  // quoted empty -> ""
}

TEST(CsvTest, RoundTrip) {
  Table t("t", Schema({{"a", ColumnType::kInt},
                       {"s", ColumnType::kString},
                       {"d", ColumnType::kDouble},
                       {"b", ColumnType::kBool}}));
  ASSERT_TRUE(t.Append({Value::Int(1), Value::String("plain"),
                        Value::Double(2.5), Value::Bool(true)})
                  .ok());
  ASSERT_TRUE(t.Append({Value::Null(), Value::String("with,comma \"q\""),
                        Value::Null(), Value::Bool(false)})
                  .ok());
  ASSERT_TRUE(t.Append({Value::Int(-7), Value::String(""), Value::Double(-0.5),
                        Value::Null()})
                  .ok());
  std::string path = ::testing::TempDir() + "/starmagic_csv_roundtrip.csv";
  ASSERT_TRUE(ExportCsv(t, path).ok());

  Table back("back", t.schema());
  ASSERT_TRUE(ImportCsv(&back, path).ok());
  EXPECT_TRUE(Table::BagEquals(t, back));
  std::remove(path.c_str());
}

TEST(CsvTest, ImportValidates) {
  Table t("t", Schema({{"a", ColumnType::kInt}}));
  std::string path = ::testing::TempDir() + "/starmagic_csv_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("a\nnot_a_number\n", f);
    fclose(f);
  }
  EXPECT_FALSE(ImportCsv(&t, path).ok());
  EXPECT_FALSE(ImportCsv(&t, "/no/such/file.csv").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace starmagic
