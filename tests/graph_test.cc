#include "qgm/graph.h"

#include <gtest/gtest.h>

namespace starmagic {
namespace {

// Builds: QUERY(select) -> {T(base), V(select) -> T}.
struct SmallGraph {
  QueryGraph g;
  Box* base;
  Box* view;
  Box* query;
  Quantifier* qv_t;  // view's quantifier over base
  Quantifier* qq_v;  // query's quantifier over view

  SmallGraph() {
    base = g.NewBox(BoxKind::kBaseTable, "T");
    base->set_table_name("t");
    base->AddOutput("a", nullptr);
    base->AddOutput("b", nullptr);
    view = g.NewBox(BoxKind::kSelect, "V");
    qv_t = g.NewQuantifier(view, QuantifierType::kForEach, base, "t");
    view->AddOutput("a", Expr::MakeColumnRef(qv_t->id, 0));
    query = g.NewBox(BoxKind::kSelect, "QUERY");
    qq_v = g.NewQuantifier(query, QuantifierType::kForEach, view, "v");
    query->AddOutput("a", Expr::MakeColumnRef(qq_v->id, 0));
    g.set_top(query);
  }
};

TEST(GraphTest, OwnershipMaps) {
  SmallGraph s;
  EXPECT_EQ(s.g.OwnerOf(s.qv_t->id), s.view);
  EXPECT_EQ(s.g.OwnerOf(s.qq_v->id), s.query);
  EXPECT_EQ(s.g.GetQuantifier(s.qv_t->id), s.qv_t);
  EXPECT_EQ(s.g.GetBox(s.base->id()), s.base);
}

TEST(GraphTest, UsesOf) {
  SmallGraph s;
  auto uses = s.g.UsesOf(s.view);
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_EQ(uses[0], s.qq_v);
  EXPECT_EQ(s.g.UsesOf(s.base).size(), 1u);
}

TEST(GraphTest, ValidatePassesOnWellFormedGraph) {
  SmallGraph s;
  EXPECT_TRUE(s.g.Validate().ok());
}

TEST(GraphTest, ValidateCatchesDanglingReference) {
  SmallGraph s;
  s.query->AddPredicate(Expr::MakeBinary(BinaryOp::kEq,
                                         Expr::MakeColumnRef(999, 0),
                                         Expr::MakeLiteral(Value::Int(1))));
  EXPECT_FALSE(s.g.Validate().ok());
}

TEST(GraphTest, GarbageCollectRemovesUnreachable) {
  SmallGraph s;
  Box* orphan = s.g.NewBox(BoxKind::kSelect, "ORPHAN");
  orphan->AddOutput("x", Expr::MakeLiteral(Value::Int(1)));
  const int orphan_id = orphan->id();  // GC frees the box itself
  EXPECT_EQ(s.g.NumBoxes(), 4);
  EXPECT_EQ(s.g.GarbageCollect(), 1);
  EXPECT_EQ(s.g.NumBoxes(), 3);
  EXPECT_EQ(s.g.GetBox(orphan_id), nullptr);
}

TEST(GraphTest, GarbageCollectFollowsMagicLinks) {
  SmallGraph s;
  Box* magic = s.g.NewBox(BoxKind::kSelect, "m_V");
  magic->set_role(BoxRole::kMagic);
  magic->AddOutput("a", Expr::MakeLiteral(Value::Int(1)));
  s.view->set_magic_box(magic);
  EXPECT_EQ(s.g.GarbageCollect(), 0);  // kept alive through the link
  s.view->set_magic_box(nullptr);
  EXPECT_EQ(s.g.GarbageCollect(), 1);
}

TEST(GraphTest, MoveQuantifierUpdatesOwnership) {
  SmallGraph s;
  Box* sm = s.g.NewBox(BoxKind::kSelect, "SM");
  ASSERT_TRUE(s.g.MoveQuantifier(s.qq_v->id, s.query, sm).ok());
  EXPECT_EQ(s.g.OwnerOf(s.qq_v->id), sm);
  EXPECT_TRUE(s.query->quantifiers().empty());
  EXPECT_EQ(sm->quantifiers().size(), 1u);
}

TEST(GraphTest, RemoveQuantifierRefusesWhileReferenced) {
  SmallGraph s;
  // query's output references qq_v.
  EXPECT_FALSE(s.g.RemoveQuantifier(s.qq_v->id).ok());
  s.query->mutable_outputs().clear();
  s.query->AddOutput("one", Expr::MakeLiteral(Value::Int(1)));
  EXPECT_TRUE(s.g.RemoveQuantifier(s.qq_v->id).ok());
}

TEST(GraphTest, CopyBoxShallowRemapsInternalRefs) {
  SmallGraph s;
  s.view->AddPredicate(Expr::MakeBinary(BinaryOp::kGt,
                                        Expr::MakeColumnRef(s.qv_t->id, 1),
                                        Expr::MakeLiteral(Value::Int(0))));
  Box* copy = s.g.CopyBoxShallow(s.view);
  ASSERT_EQ(copy->quantifiers().size(), 1u);
  int new_qid = copy->quantifiers()[0]->id;
  EXPECT_NE(new_qid, s.qv_t->id);
  EXPECT_EQ(copy->quantifiers()[0]->input, s.base);  // shallow: same child
  EXPECT_TRUE(copy->predicates()[0]->References(new_qid));
  EXPECT_FALSE(copy->predicates()[0]->References(s.qv_t->id));
  EXPECT_TRUE(copy->outputs()[0].expr->References(new_qid));
}

TEST(GraphTest, CopyBoxShallowPreservesCorrelationRefs) {
  SmallGraph s;
  // Predicate in the view referencing the query's quantifier (correlation).
  s.view->AddPredicate(Expr::MakeBinary(BinaryOp::kEq,
                                        Expr::MakeColumnRef(s.qv_t->id, 0),
                                        Expr::MakeColumnRef(s.qq_v->id, 0)));
  Box* copy = s.g.CopyBoxShallow(s.view);
  EXPECT_TRUE(copy->predicates()[0]->References(s.qq_v->id));
}

TEST(GraphTest, CloneProducesIsomorphicIndependentGraph) {
  SmallGraph s;
  s.view->set_adornment("bf");
  std::unique_ptr<QueryGraph> clone = s.g.Clone();
  EXPECT_TRUE(clone->Validate().ok());
  EXPECT_EQ(clone->NumBoxes(), s.g.NumBoxes());
  EXPECT_EQ(clone->NumQuantifiers(), s.g.NumQuantifiers());
  Box* cloned_view = clone->GetBox(s.view->id());
  ASSERT_NE(cloned_view, nullptr);
  EXPECT_NE(cloned_view, s.view);
  EXPECT_EQ(cloned_view->adornment(), "bf");
  // Mutating the clone leaves the original untouched.
  cloned_view->set_label("MUTATED");
  EXPECT_EQ(s.view->label(), "V");
}

TEST(GraphTest, StrataForNonRecursiveGraph) {
  SmallGraph s;
  auto info = s.g.ComputeStrata();
  EXPECT_TRUE(info.recursive_boxes.empty());
  EXPECT_EQ(info.stratum[s.base->id()], 0);
  EXPECT_EQ(info.stratum[s.view->id()], 1);
  EXPECT_EQ(info.stratum[s.query->id()], 2);
}

TEST(GraphTest, StrataDetectsRecursiveScc) {
  QueryGraph g;
  Box* base = g.NewBox(BoxKind::kBaseTable, "E");
  base->set_table_name("e");
  base->AddOutput("x", nullptr);
  Box* u = g.NewBox(BoxKind::kSetOp, "U");
  u->set_enforce_distinct(true);
  Box* b0 = g.NewBox(BoxKind::kSelect, "B0");
  Quantifier* q0 = g.NewQuantifier(b0, QuantifierType::kForEach, base, "e");
  b0->AddOutput("x", Expr::MakeColumnRef(q0->id, 0));
  Box* b1 = g.NewBox(BoxKind::kSelect, "B1");
  Quantifier* q1 = g.NewQuantifier(b1, QuantifierType::kForEach, u, "u");
  b1->AddOutput("x", Expr::MakeColumnRef(q1->id, 0));
  g.NewQuantifier(u, QuantifierType::kForEach, b0, "l");
  g.NewQuantifier(u, QuantifierType::kForEach, b1, "r");
  u->AddOutput("x", nullptr);
  Box* top = g.NewBox(BoxKind::kSelect, "Q");
  Quantifier* qt = g.NewQuantifier(top, QuantifierType::kForEach, u, "u");
  top->AddOutput("x", Expr::MakeColumnRef(qt->id, 0));
  g.set_top(top);
  ASSERT_TRUE(g.Validate().ok());

  auto info = g.ComputeStrata();
  EXPECT_TRUE(info.recursive_boxes.count(u->id()));
  EXPECT_TRUE(info.recursive_boxes.count(b1->id()));
  EXPECT_FALSE(info.recursive_boxes.count(b0->id()));
  EXPECT_FALSE(info.recursive_boxes.count(top->id()));
  EXPECT_EQ(info.scc_id[u->id()], info.scc_id[b1->id()]);
  EXPECT_GT(info.stratum[top->id()], info.stratum[u->id()]);
}

}  // namespace
}  // namespace starmagic
