#include "qgm/builder.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace starmagic {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .CreateTable("emp", Schema({{"empno", ColumnType::kInt},
                                                {"name", ColumnType::kString},
                                                {"dept", ColumnType::kInt},
                                                {"sal", ColumnType::kDouble}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .CreateTable("dept", Schema({{"deptno", ColumnType::kInt},
                                                 {"dname", ColumnType::kString}}))
                    .ok());
    ViewDefinition v;
    v.name = "avgsal";
    v.column_names = {"dept", "avg_sal"};
    v.body_sql = "SELECT dept, AVG(sal) FROM emp GROUP BY dept";
    ASSERT_TRUE(catalog_.CreateView(std::move(v)).ok());
  }

  Result<std::unique_ptr<QueryGraph>> Build(const std::string& sql) {
    auto blob = ParseQuery(sql);
    if (!blob.ok()) return blob.status();
    QgmBuilder builder(&catalog_);
    return builder.Build(**blob);
  }

  std::unique_ptr<QueryGraph> MustBuild(const std::string& sql) {
    auto r = Build(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : nullptr;
  }

  static Box* FindBox(const QueryGraph& g, BoxKind kind) {
    for (Box* b : g.boxes()) {
      if (b->kind() == kind) return b;
    }
    return nullptr;
  }

  Catalog catalog_;
};

TEST_F(BuilderTest, SimpleSelectShape) {
  auto g = MustBuild("SELECT e.empno, e.sal FROM emp e WHERE e.sal > 100");
  ASSERT_NE(g, nullptr);
  Box* top = g->top();
  EXPECT_EQ(top->kind(), BoxKind::kSelect);
  EXPECT_EQ(top->NumOutputs(), 2);
  EXPECT_EQ(top->quantifiers().size(), 1u);
  EXPECT_EQ(top->predicates().size(), 1u);
  EXPECT_EQ(top->quantifiers()[0]->input->kind(), BoxKind::kBaseTable);
}

TEST_F(BuilderTest, StarExpandsAllColumns) {
  auto g = MustBuild("SELECT * FROM emp, dept");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->top()->NumOutputs(), 6);
  auto g2 = MustBuild("SELECT d.* FROM emp e, dept d");
  ASSERT_NE(g2, nullptr);
  EXPECT_EQ(g2->top()->NumOutputs(), 2);
}

TEST_F(BuilderTest, OutputNamesFromAliasesAndColumns) {
  auto g = MustBuild("SELECT empno AS id, sal, sal * 2 FROM emp");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->top()->outputs()[0].name, "id");
  EXPECT_EQ(g->top()->outputs()[1].name, "sal");
  EXPECT_EQ(g->top()->outputs()[2].name, "col3");
}

TEST_F(BuilderTest, GroupByBuildsTriplet) {
  auto g = MustBuild(
      "SELECT dept, AVG(sal) FROM emp WHERE sal > 0 GROUP BY dept "
      "HAVING COUNT(*) > 1");
  ASSERT_NE(g, nullptr);
  Box* groupby = FindBox(*g, BoxKind::kGroupBy);
  ASSERT_NE(groupby, nullptr);
  EXPECT_EQ(groupby->num_group_keys(), 1);
  // AVG and COUNT(*) -> 2 aggregate outputs.
  EXPECT_EQ(groupby->NumOutputs(), 3);
  // The triplet: T1 (select) -> T2 (groupby) -> T3 (top select with HAVING).
  Box* t3 = g->top();
  EXPECT_EQ(t3->kind(), BoxKind::kSelect);
  EXPECT_EQ(t3->quantifiers()[0]->input, groupby);
  EXPECT_EQ(t3->predicates().size(), 1u);  // HAVING
  Box* t1 = groupby->quantifiers()[0]->input;
  EXPECT_EQ(t1->kind(), BoxKind::kSelect);
  EXPECT_EQ(t1->predicates().size(), 1u);  // WHERE
}

TEST_F(BuilderTest, AggregateDeduplication) {
  auto g = MustBuild(
      "SELECT dept, AVG(sal), AVG(sal) + 1 FROM emp GROUP BY dept");
  ASSERT_NE(g, nullptr);
  Box* groupby = FindBox(*g, BoxKind::kGroupBy);
  ASSERT_NE(groupby, nullptr);
  EXPECT_EQ(groupby->NumOutputs(), 2);  // key + one shared AVG
}

TEST_F(BuilderTest, NonGroupedColumnRejected) {
  auto r = Build("SELECT name, AVG(sal) FROM emp GROUP BY dept");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSemanticError);
}

TEST_F(BuilderTest, ViewExpandsToSharedBox) {
  auto g = MustBuild(
      "SELECT a.avg_sal, b.avg_sal FROM avgsal a, avgsal b "
      "WHERE a.dept = b.dept");
  ASSERT_NE(g, nullptr);
  // Both quantifiers range over the *same* view box (common subexpression).
  Box* top = g->top();
  ASSERT_EQ(top->quantifiers().size(), 2u);
  EXPECT_EQ(top->quantifiers()[0]->input, top->quantifiers()[1]->input);
}

TEST_F(BuilderTest, ViewColumnRenamesApply) {
  auto g = MustBuild("SELECT avg_sal FROM avgsal");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->top()->outputs()[0].name, "avg_sal");
}

TEST_F(BuilderTest, ExistsBecomesExistentialQuantifier) {
  auto g = MustBuild(
      "SELECT d.dname FROM dept d WHERE EXISTS "
      "(SELECT e.empno FROM emp e WHERE e.dept = d.deptno)");
  ASSERT_NE(g, nullptr);
  Box* top = g->top();
  const Quantifier* eq = nullptr;
  for (const auto& q : top->quantifiers()) {
    if (q->type == QuantifierType::kExistential) eq = q.get();
  }
  ASSERT_NE(eq, nullptr);
  EXPECT_FALSE(eq->requires_empty);
  // The correlation predicate lives inside the subquery box and references
  // the outer quantifier.
  const Box* sub = eq->input;
  ASSERT_EQ(sub->predicates().size(), 1u);
  int outer_qid = top->quantifiers()[0]->id;
  EXPECT_TRUE(sub->predicates()[0]->References(outer_qid));
}

TEST_F(BuilderTest, NotExistsBecomesAllWithRequiresEmpty) {
  auto g = MustBuild(
      "SELECT d.dname FROM dept d WHERE NOT EXISTS "
      "(SELECT e.empno FROM emp e WHERE e.dept = d.deptno)");
  ASSERT_NE(g, nullptr);
  const Quantifier* aq = nullptr;
  for (const auto& q : g->top()->quantifiers()) {
    if (q->type == QuantifierType::kAll) aq = q.get();
  }
  ASSERT_NE(aq, nullptr);
  EXPECT_TRUE(aq->requires_empty);
}

TEST_F(BuilderTest, InSubqueryAddsComparisonPredicate) {
  auto g = MustBuild(
      "SELECT e.empno FROM emp e WHERE e.dept IN "
      "(SELECT d.deptno FROM dept d)");
  ASSERT_NE(g, nullptr);
  Box* top = g->top();
  const Quantifier* eq = nullptr;
  for (const auto& q : top->quantifiers()) {
    if (q->type == QuantifierType::kExistential) eq = q.get();
  }
  ASSERT_NE(eq, nullptr);
  bool found = false;
  for (const ExprPtr& p : top->predicates()) {
    if (p->References(eq->id)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(BuilderTest, NotInBecomesAllQuantifierWithNeq) {
  auto g = MustBuild(
      "SELECT e.empno FROM emp e WHERE e.dept NOT IN "
      "(SELECT d.deptno FROM dept d)");
  ASSERT_NE(g, nullptr);
  const Quantifier* aq = nullptr;
  for (const auto& q : g->top()->quantifiers()) {
    if (q->type == QuantifierType::kAll) aq = q.get();
  }
  ASSERT_NE(aq, nullptr);
  EXPECT_FALSE(aq->requires_empty);
}

TEST_F(BuilderTest, ScalarSubqueryBecomesScalarQuantifier) {
  auto g = MustBuild(
      "SELECT e.empno FROM emp e WHERE e.sal > "
      "(SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dept = e.dept)");
  ASSERT_NE(g, nullptr);
  const Quantifier* sq = nullptr;
  for (const auto& q : g->top()->quantifiers()) {
    if (q->type == QuantifierType::kScalar) sq = q.get();
  }
  ASSERT_NE(sq, nullptr);
  EXPECT_EQ(sq->input->NumOutputs(), 1);
}

TEST_F(BuilderTest, UnionBuildsSetOpBox) {
  auto g = MustBuild(
      "SELECT empno FROM emp UNION ALL SELECT deptno FROM dept");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->top()->kind(), BoxKind::kSetOp);
  EXPECT_EQ(g->top()->set_op(), SetOpKind::kUnion);
  EXPECT_FALSE(g->top()->enforce_distinct());
  auto g2 = MustBuild("SELECT empno FROM emp UNION SELECT deptno FROM dept");
  ASSERT_NE(g2, nullptr);
  EXPECT_TRUE(g2->top()->enforce_distinct());
}

TEST_F(BuilderTest, SetOpArityMismatchRejected) {
  auto r = Build("SELECT empno, sal FROM emp UNION SELECT deptno FROM dept");
  EXPECT_FALSE(r.ok());
}

TEST_F(BuilderTest, AmbiguousColumnRejected) {
  ASSERT_TRUE(catalog_
                  .CreateTable("emp2", Schema({{"empno", ColumnType::kInt}}))
                  .ok());
  auto r = Build("SELECT empno FROM emp, emp2");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BuilderTest, UnknownTableAndColumnRejected) {
  EXPECT_FALSE(Build("SELECT x FROM nosuch").ok());
  EXPECT_FALSE(Build("SELECT nocol FROM emp").ok());
  EXPECT_FALSE(Build("SELECT e.nocol FROM emp e").ok());
}

TEST_F(BuilderTest, DerivedTableCannotSeeSiblings) {
  auto r = Build(
      "SELECT x.empno FROM emp e, "
      "(SELECT empno FROM emp WHERE dept = e.dept) x");
  EXPECT_FALSE(r.ok());
}

TEST_F(BuilderTest, OrderByResolvesNamesAndOrdinals) {
  auto g = MustBuild("SELECT empno, sal FROM emp ORDER BY sal DESC, 1");
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->order_by.size(), 2u);
  EXPECT_EQ(g->order_by[0].column, 1);
  EXPECT_FALSE(g->order_by[0].ascending);
  EXPECT_EQ(g->order_by[1].column, 0);
  auto bad = Build("SELECT empno FROM emp ORDER BY nosuch");
  EXPECT_FALSE(bad.ok());
}

TEST_F(BuilderTest, RecursiveViewBuildsCycle) {
  ASSERT_TRUE(catalog_
                  .CreateTable("edge", Schema({{"src", ColumnType::kInt},
                                               {"dst", ColumnType::kInt}}))
                  .ok());
  ViewDefinition tc;
  tc.name = "tc";
  tc.is_recursive = true;
  tc.column_names = {"src", "dst"};
  tc.body_sql =
      "SELECT src, dst FROM edge UNION "
      "SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src";
  ASSERT_TRUE(catalog_.CreateView(std::move(tc)).ok());
  auto g = MustBuild("SELECT src, dst FROM tc");
  ASSERT_NE(g, nullptr);
  auto info = g->ComputeStrata();
  EXPECT_FALSE(info.recursive_boxes.empty());
}

TEST_F(BuilderTest, RecursiveViewRequiresUnion) {
  ASSERT_TRUE(catalog_
                  .CreateTable("edge2", Schema({{"src", ColumnType::kInt},
                                                {"dst", ColumnType::kInt}}))
                  .ok());
  ViewDefinition tc;
  tc.name = "badtc";
  tc.is_recursive = true;
  tc.column_names = {"src", "dst"};
  tc.body_sql = "SELECT t.src, e.dst FROM badtc t, edge2 e WHERE t.dst = e.src";
  ASSERT_TRUE(catalog_.CreateView(std::move(tc)).ok());
  EXPECT_FALSE(Build("SELECT src FROM badtc").ok());
}

TEST_F(BuilderTest, GraphValidatesAfterEveryBuild) {
  const char* queries[] = {
      "SELECT empno FROM emp",
      "SELECT dept, COUNT(*) FROM emp GROUP BY dept",
      "SELECT e.empno FROM emp e WHERE e.dept IN (SELECT deptno FROM dept)",
      "SELECT empno FROM emp UNION SELECT deptno FROM dept",
      "SELECT avg_sal FROM avgsal WHERE dept = 3",
  };
  for (const char* q : queries) {
    auto g = MustBuild(q);
    ASSERT_NE(g, nullptr) << q;
    EXPECT_TRUE(g->Validate().ok()) << q;
  }
}

}  // namespace
}  // namespace starmagic
