#include "plan/plan_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "exec/executor.h"

namespace starmagic {
namespace {

// ---------------------------------------------------------------------------
// Key construction: SQL normalization and options fingerprint.
// ---------------------------------------------------------------------------

TEST(PlanCacheKeyTest, NormalizeSqlCollapsesWhitespaceOutsideStrings) {
  EXPECT_EQ(PlanCache::NormalizeSql("  SELECT  a\n\tFROM   t ;  "),
            "SELECT a FROM t");
  // Whitespace inside string literals is content, not formatting.
  EXPECT_EQ(PlanCache::NormalizeSql("SELECT 'a  b'   FROM t"),
            "SELECT 'a  b' FROM t");
  // Case is preserved: normalization must never fold literals.
  EXPECT_EQ(PlanCache::NormalizeSql("select A from T"), "select A from T");
  EXPECT_EQ(PlanCache::NormalizeSql(""), "");
  EXPECT_EQ(PlanCache::NormalizeSql(" ; "), "");
}

TEST(PlanCacheKeyTest, EquivalentFormattingsShareOneKey) {
  EXPECT_EQ(PlanCache::NormalizeSql("SELECT dst FROM tc WHERE src = ?"),
            PlanCache::NormalizeSql("SELECT dst\n  FROM tc\n  WHERE src = ?;"));
}

TEST(PlanCacheKeyTest, FingerprintCoversEveryPlanAffectingKnob) {
  PipelineOptions base;
  const std::string fp = PlanCache::Fingerprint(base);

  PipelineOptions strategy = base;
  strategy.strategy = ExecutionStrategy::kOriginal;
  EXPECT_NE(PlanCache::Fingerprint(strategy), fp);

  PipelineOptions toggle = base;
  toggle.toggles.constant_folding = !toggle.toggles.constant_folding;
  EXPECT_NE(PlanCache::Fingerprint(toggle), fp);

  PipelineOptions emst = base;
  emst.emst.push_conditions = !emst.emst.push_conditions;
  EXPECT_NE(PlanCache::Fingerprint(emst), fp);

  PipelineOptions cost = base;
  cost.cost_compare = !cost.cost_compare;
  EXPECT_NE(PlanCache::Fingerprint(cost), fp);

  PipelineOptions sips = base;
  sips.try_sips_order = !sips.try_sips_order;
  EXPECT_NE(PlanCache::Fingerprint(sips), fp);

  // Observability sinks change what compilation reports, not what it
  // produces — they must NOT fragment the cache.
  PipelineOptions sinks = base;
  sinks.capture_snapshots = true;
  EXPECT_EQ(PlanCache::Fingerprint(sinks), fp);
}

// ---------------------------------------------------------------------------
// Cache mechanics: LRU, capacity, residency accounting, invalidation.
// ---------------------------------------------------------------------------

class PlanCacheUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE edge (src INTEGER, dst INTEGER);
      INSERT INTO edge VALUES (1,2),(2,3),(3,4);
      ANALYZE;
    )sql")
                    .ok());
  }

  // A CachedPlan compiled from `sql`, pinned at the catalog's current
  // versions (what Database::CachePlan would build).
  CachedPlan Compile(const std::string& sql) {
    auto pipeline = db_.Explain(sql, QueryOptions(ExecutionStrategy::kMagic));
    EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    CachedPlan plan;
    plan.graph = std::move(pipeline->graph);
    for (const std::string& table : ReferencedBaseTables(*plan.graph)) {
      plan.pins.push_back({table, db_.catalog()->TableVersion(table),
                           db_.catalog()->LastAnalyzeVersion(table)});
    }
    plan.ddl_version = db_.catalog()->ddl_version();
    plan.normalized_sql = PlanCache::NormalizeSql(sql);
    plan.fingerprint = PlanCache::Fingerprint(PipelineOptions{});
    return plan;
  }

  Database db_;
};

TEST_F(PlanCacheUnitTest, LruEvictsOldestPastCapacity) {
  PlanCache cache(2);
  EXPECT_EQ(cache.Insert(Compile("SELECT src FROM edge")), 0);
  EXPECT_EQ(cache.Insert(Compile("SELECT dst FROM edge")), 0);
  EXPECT_EQ(cache.Insert(Compile("SELECT src, dst FROM edge")), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);

  const std::string fp = PlanCache::Fingerprint(PipelineOptions{});
  // The first insert was the LRU tail: evicted.
  EXPECT_EQ(cache.Lookup("SELECT src FROM edge", fp, *db_.catalog()).plan,
            nullptr);
  // The other two survive.
  EXPECT_NE(cache.Lookup("SELECT dst FROM edge", fp, *db_.catalog()).plan,
            nullptr);
  EXPECT_NE(
      cache.Lookup("SELECT src, dst FROM edge", fp, *db_.catalog()).plan,
      nullptr);
}

TEST_F(PlanCacheUnitTest, LookupRefreshesLruPosition) {
  PlanCache cache(2);
  cache.Insert(Compile("SELECT src FROM edge"));
  cache.Insert(Compile("SELECT dst FROM edge"));
  const std::string fp = PlanCache::Fingerprint(PipelineOptions{});
  // Touch the older entry; the newer one becomes the eviction victim.
  ASSERT_NE(cache.Lookup("SELECT src FROM edge", fp, *db_.catalog()).plan,
            nullptr);
  cache.Insert(Compile("SELECT src, dst FROM edge"));
  EXPECT_NE(cache.Lookup("SELECT src FROM edge", fp, *db_.catalog()).plan,
            nullptr);
  EXPECT_EQ(cache.Lookup("SELECT dst FROM edge", fp, *db_.catalog()).plan,
            nullptr);
}

TEST_F(PlanCacheUnitTest, SameKeyInsertReplacesWithoutEviction) {
  PlanCache cache(2);
  cache.Insert(Compile("SELECT src FROM edge"));
  EXPECT_EQ(cache.Insert(Compile("SELECT src FROM edge")), 0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST_F(PlanCacheUnitTest, DistinctFingerprintsAreDistinctEntries) {
  PlanCache cache;
  CachedPlan a = Compile("SELECT src FROM edge");
  CachedPlan b = Compile("SELECT src FROM edge");
  b.fingerprint = "other";
  cache.Insert(std::move(a));
  cache.Insert(std::move(b));
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(PlanCacheUnitTest, SetCapacityZeroDisablesAndClears) {
  PlanCache cache;
  cache.Insert(Compile("SELECT src FROM edge"));
  EXPECT_GT(cache.resident_bytes(), 0);
  cache.SetCapacity(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0);
  // Disabled: lookups miss, inserts are dropped.
  const std::string fp = PlanCache::Fingerprint(PipelineOptions{});
  EXPECT_EQ(cache.Lookup("SELECT src FROM edge", fp, *db_.catalog()).plan,
            nullptr);
  cache.Insert(Compile("SELECT src FROM edge"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PlanCacheUnitTest, ResidentBytesReturnToZeroOnClear) {
  PlanCache cache;
  cache.Insert(Compile("SELECT src FROM edge"));
  cache.Insert(Compile("SELECT dst FROM edge"));
  int64_t resident = cache.resident_bytes();
  EXPECT_GT(resident, 0);
  EXPECT_GE(cache.peak_resident_bytes(), resident);
  cache.Clear();
  EXPECT_EQ(cache.resident_bytes(), 0);
  EXPECT_GE(cache.peak_resident_bytes(), resident);  // peak survives
  EXPECT_EQ(cache.stats().evictions, 0);  // Clear is not an eviction
}

TEST_F(PlanCacheUnitTest, DmlInvalidatesThroughTableVersionPin) {
  PlanCache cache;
  cache.Insert(Compile("SELECT src FROM edge"));
  const std::string fp = PlanCache::Fingerprint(PipelineOptions{});
  ASSERT_NE(cache.Lookup("SELECT src FROM edge", fp, *db_.catalog()).plan,
            nullptr);
  ASSERT_TRUE(db_.Execute("INSERT INTO edge VALUES (4,5)").ok());
  PlanCache::LookupResult stale =
      cache.Lookup("SELECT src FROM edge", fp, *db_.catalog());
  EXPECT_EQ(stale.plan, nullptr);
  EXPECT_TRUE(stale.invalidated);
  EXPECT_EQ(cache.size(), 0u);  // dropped, not retained
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);  // the stale lookup is also a miss
}

TEST_F(PlanCacheUnitTest, AnalyzeInvalidatesThroughAnalyzeVersionPin) {
  ASSERT_TRUE(db_.Execute("INSERT INTO edge VALUES (4,5)").ok());
  PlanCache cache;
  cache.Insert(Compile("SELECT src FROM edge"));
  const std::string fp = PlanCache::Fingerprint(PipelineOptions{});
  ASSERT_TRUE(db_.Execute("ANALYZE edge").ok());
  PlanCache::LookupResult stale =
      cache.Lookup("SELECT src FROM edge", fp, *db_.catalog());
  EXPECT_EQ(stale.plan, nullptr);
  EXPECT_TRUE(stale.invalidated);
}

TEST_F(PlanCacheUnitTest, UnrelatedDdlInvalidatesThroughDdlVersionPin) {
  // The catalog-wide DDL pin over-invalidates by design: it is the only
  // pin that catches drop-and-recreate of a referenced table.
  PlanCache cache;
  cache.Insert(Compile("SELECT src FROM edge"));
  const std::string fp = PlanCache::Fingerprint(PipelineOptions{});
  ASSERT_TRUE(db_.Execute("CREATE TABLE unrelated (x INTEGER)").ok());
  EXPECT_TRUE(
      cache.Lookup("SELECT src FROM edge", fp, *db_.catalog()).invalidated);
}

TEST_F(PlanCacheUnitTest, DropAndRecreateNeverServesTheOldPlan) {
  PlanCache cache;
  cache.Insert(Compile("SELECT src FROM edge"));
  const std::string fp = PlanCache::Fingerprint(PipelineOptions{});
  ASSERT_TRUE(db_.Execute("DROP TABLE edge").ok());
  ASSERT_TRUE(
      db_.Execute("CREATE TABLE edge (src INTEGER, dst INTEGER)").ok());
  PlanCache::LookupResult stale =
      cache.Lookup("SELECT src FROM edge", fp, *db_.catalog());
  EXPECT_EQ(stale.plan, nullptr);
  EXPECT_TRUE(stale.invalidated);
}

// ---------------------------------------------------------------------------
// Parameter binding into a cloned master graph.
// ---------------------------------------------------------------------------

TEST_F(PlanCacheUnitTest, BindParametersRejectsMissingBinding) {
  auto pipeline = db_.Explain("SELECT src FROM edge WHERE dst = ?",
                              QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  Status s = BindParameters(pipeline->graph.get(), {});
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_NE(s.message().find("?1"), std::string::npos);
}

TEST_F(PlanCacheUnitTest, MasterGraphSurvivesBindingIntoClones) {
  // The cached master keeps its kParameter nodes across executions: each
  // run binds into a clone, so the same entry serves different arguments.
  CachedPlan master = Compile("SELECT src FROM edge WHERE dst = ?");
  for (int64_t dst : {2, 3, 2}) {
    std::unique_ptr<QueryGraph> clone = master.graph->Clone();
    ASSERT_TRUE(BindParameters(clone.get(), {Value::Int(dst)}).ok());
    Executor executor(clone.get(), db_.catalog());
    auto result = executor.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->num_rows(), 1);
    EXPECT_EQ(result->rows()[0][0].int_value(), dst - 1);
  }
}

TEST_F(PlanCacheUnitTest, SysPlansAreRecognizedAsUncacheable) {
  auto sys = db_.Explain("SELECT name FROM sys.tables",
                         QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_TRUE(ReferencesSysTables(*sys->graph));
  auto base = db_.Explain("SELECT src FROM edge",
                          QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(ReferencesSysTables(*base->graph));
}

// ---------------------------------------------------------------------------
// PREPARE / EXECUTE / DEALLOCATE through the Database.
// ---------------------------------------------------------------------------

class PreparedStatementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE edge (src INTEGER, dst INTEGER);
      INSERT INTO edge VALUES (1,2),(2,3),(3,4),(2,5),(5,6),(10,11),(11,12);
      CREATE RECURSIVE VIEW tc (src, dst) AS
        SELECT src, dst FROM edge
        UNION
        SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src;
      ANALYZE;
    )sql")
                    .ok());
  }

  Result<QueryResult> Run(const std::string& sql, int threads = 1) {
    QueryOptions options(ExecutionStrategy::kMagic);
    options.metrics = &metrics_;
    options.num_threads = threads;
    return db_.Query(sql, options);
  }

  Database db_;
  MetricsRegistry metrics_;
};

TEST_F(PreparedStatementTest, ExecuteSkipsCompileAndMatchesColdResults) {
  // Cold reference: the same query with the literal inlined.
  auto cold = Run("SELECT dst FROM tc WHERE src = 2 ORDER BY dst");
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(cold->table.num_rows(), 4);  // 3, 4, 5, 6

  auto prep = Run("PREPARE deep AS SELECT dst FROM tc WHERE src = ? "
                  "ORDER BY dst");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  EXPECT_FALSE(prep->plan_cache_hit);
  // PREPARE compiles eagerly: the pipeline diagnostics are real.
  EXPECT_FALSE(prep->rule_fires.empty());

  // Every EXECUTE hits the plan PREPARE warmed: the compile pipeline is
  // skipped, so the hot path reports zero rule fires.
  for (int i = 0; i < 3; ++i) {
    auto exec = Run("EXECUTE deep(2)");
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_TRUE(exec->plan_cache_hit);
    EXPECT_TRUE(exec->rule_fires.empty());
    EXPECT_EQ(exec->table.ToString(100), cold->table.ToString(100));
  }
  EXPECT_EQ(metrics_.CounterValue("plan_cache.hits"), 3);
  EXPECT_EQ(metrics_.CounterValue("plan_cache.misses"), 1);  // the PREPARE

  // Different arguments reuse the same cached master plan.
  auto other = Run("EXECUTE deep(10)");
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_TRUE(other->plan_cache_hit);
  ASSERT_EQ(other->table.num_rows(), 2);  // 11, 12
  EXPECT_EQ(db_.plan_cache()->size(), 1u);
}

TEST_F(PreparedStatementTest, CachedResultsAreByteIdenticalAcrossThreads) {
  ASSERT_TRUE(
      Run("PREPARE deep AS SELECT dst FROM tc WHERE src = ? ORDER BY dst")
          .ok());
  auto cold = Run("SELECT dst FROM tc WHERE src = 1 ORDER BY dst");
  ASSERT_TRUE(cold.ok());
  const std::string expected = cold->table.ToString(100);
  for (int threads : {1, 2, 8}) {
    auto exec = Run("EXECUTE deep(1)", threads);
    ASSERT_TRUE(exec.ok()) << threads << ": " << exec.status().ToString();
    EXPECT_TRUE(exec->plan_cache_hit);
    EXPECT_EQ(exec->table.ToString(100), expected) << "threads=" << threads;
    EXPECT_EQ(exec->exec_stats.TotalWork(), cold->exec_stats.TotalWork())
        << "threads=" << threads;
  }
}

TEST_F(PreparedStatementTest, DmlInvalidatesBeforeNextExecution) {
  ASSERT_TRUE(
      Run("PREPARE deep AS SELECT dst FROM tc WHERE src = ? ORDER BY dst")
          .ok());
  auto warm = Run("EXECUTE deep(3)");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  ASSERT_EQ(warm->table.num_rows(), 1);  // 4

  // New edge 4->7 extends the closure; the stale plan must not serve it.
  ASSERT_TRUE(db_.Execute("INSERT INTO edge VALUES (4,7)").ok());
  auto recompiled = Run("EXECUTE deep(3)");
  ASSERT_TRUE(recompiled.ok()) << recompiled.status().ToString();
  EXPECT_FALSE(recompiled->plan_cache_hit);
  ASSERT_EQ(recompiled->table.num_rows(), 2);  // 4, 7
  EXPECT_EQ(metrics_.CounterValue("plan_cache.invalidations"), 1);

  // The recompile re-cached; the next execution hits again.
  auto rewarmed = Run("EXECUTE deep(3)");
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_TRUE(rewarmed->plan_cache_hit);
}

TEST_F(PreparedStatementTest, AnalyzeAndDdlInvalidateBeforeNextExecution) {
  ASSERT_TRUE(Run("PREPARE deep AS SELECT dst FROM tc WHERE src = ?").ok());
  ASSERT_TRUE(Run("EXECUTE deep(2)")->plan_cache_hit);

  ASSERT_TRUE(db_.Execute("INSERT INTO edge VALUES (6,8)").ok());
  ASSERT_TRUE(db_.Execute("ANALYZE edge").ok());
  EXPECT_FALSE(Run("EXECUTE deep(2)")->plan_cache_hit);
  ASSERT_TRUE(Run("EXECUTE deep(2)")->plan_cache_hit);

  ASSERT_TRUE(db_.Execute("CREATE TABLE unrelated (x INTEGER)").ok());
  EXPECT_FALSE(Run("EXECUTE deep(2)")->plan_cache_hit);
  ASSERT_TRUE(Run("EXECUTE deep(2)")->plan_cache_hit);
}

TEST_F(PreparedStatementTest, LifecycleErrorsAreTyped) {
  EXPECT_EQ(Run("EXECUTE nope").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(Run("PREPARE p AS SELECT dst FROM tc WHERE src = ?").ok());
  EXPECT_EQ(Run("PREPARE p AS SELECT src FROM edge").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(Run("EXECUTE p").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Run("EXECUTE p(1, 2)").status().code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(Run("DEALLOCATE p").ok());
  EXPECT_EQ(Run("EXECUTE p(1)").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(Run("DEALLOCATE p").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(db_.PreparedStatementNames().empty());
}

TEST_F(PreparedStatementTest, PreparedNamesAreCaseInsensitiveAndListed) {
  ASSERT_TRUE(Run("PREPARE Deep AS SELECT dst FROM tc WHERE src = ?").ok());
  EXPECT_EQ(Run("PREPARE DEEP AS SELECT src FROM edge").status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_EQ(db_.PreparedStatementNames().size(), 1u);
  ASSERT_TRUE(Run("EXECUTE deep(2)").ok());
  ASSERT_TRUE(Run("DEALLOCATE DEEP").ok());
}

TEST_F(PreparedStatementTest, StatementsGoThroughQueryNotExecute) {
  EXPECT_FALSE(db_.Execute("PREPARE p AS SELECT src FROM edge").ok());
  EXPECT_FALSE(db_.Execute("EXECUTE p").ok());
  EXPECT_FALSE(db_.Execute("DEALLOCATE p").ok());
}

// ---------------------------------------------------------------------------
// Opt-in caching for plain SELECT / EXPLAIN.
// ---------------------------------------------------------------------------

TEST_F(PreparedStatementTest, SelectCachingIsOptIn) {
  // Default options never consult the cache.
  ASSERT_FALSE(Run("SELECT dst FROM tc WHERE src = 2")->plan_cache_hit);
  ASSERT_FALSE(Run("SELECT dst FROM tc WHERE src = 2")->plan_cache_hit);
  EXPECT_EQ(db_.plan_cache()->size(), 0u);

  QueryOptions options(ExecutionStrategy::kMagic);
  options.use_plan_cache = true;
  auto first = db_.Query("SELECT dst FROM tc WHERE src = 2", options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->plan_cache_hit);
  // Different formatting, same normalized key.
  auto second =
      db_.Query("SELECT dst\n   FROM tc  WHERE src = 2 ;", options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->plan_cache_hit);
  EXPECT_TRUE(second->rule_fires.empty());
  EXPECT_TRUE(Table::BagEquals(first->table, second->table));
}

TEST_F(PreparedStatementTest, ExplainReportsCacheDisposition) {
  QueryOptions options(ExecutionStrategy::kMagic);
  options.use_plan_cache = true;
  auto miss = db_.Query("EXPLAIN SELECT dst FROM tc WHERE src = 2", options);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_NE(miss->analyze_report.find("plan_cache=miss"), std::string::npos);
  auto hit = db_.Query("EXPLAIN SELECT dst FROM tc WHERE src = 2", options);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->plan_cache_hit);
  EXPECT_NE(hit->analyze_report.find("plan_cache=hit"), std::string::npos);
}

TEST_F(PreparedStatementTest, SysTableQueriesAreNeverCached) {
  QueryOptions options(ExecutionStrategy::kOriginal);
  options.use_plan_cache = true;
  for (int i = 0; i < 2; ++i) {
    auto r = db_.Query("SELECT name FROM sys.tables", options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->plan_cache_hit);
  }
  EXPECT_EQ(db_.plan_cache()->size(), 0u);
}

TEST_F(PreparedStatementTest, DisabledCacheStillExecutesPreparedStatements) {
  db_.plan_cache()->SetCapacity(0);
  ASSERT_TRUE(
      Run("PREPARE deep AS SELECT dst FROM tc WHERE src = ? ORDER BY dst")
          .ok());
  auto exec = Run("EXECUTE deep(2)");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_FALSE(exec->plan_cache_hit);  // recompiled per execution
  ASSERT_EQ(exec->table.num_rows(), 4);
}

// ---------------------------------------------------------------------------
// sys.plan_cache: introspection rows and join determinism.
// ---------------------------------------------------------------------------

TEST_F(PreparedStatementTest, SysPlanCacheRowsReflectEntries) {
  ASSERT_TRUE(Run("PREPARE deep AS SELECT dst FROM tc WHERE src = ?").ok());
  ASSERT_TRUE(Run("EXECUTE deep(2)").ok());
  ASSERT_TRUE(Run("EXECUTE deep(10)").ok());

  auto r = Run("SELECT sql, hits, num_params, tables FROM sys.plan_cache");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->table.num_rows(), 1);
  const Row& row = r->table.rows()[0];
  EXPECT_EQ(row[0].string_value(), "SELECT dst FROM tc WHERE src = ?");
  EXPECT_EQ(row[1].int_value(), 2);
  EXPECT_EQ(row[2].int_value(), 1);
  // The recursive view bottoms out in the edge base table; its pin
  // carries the modified/analyzed versions the entry was compiled at.
  EXPECT_NE(row[3].string_value().find("edge@"), std::string::npos);
}

TEST_F(PreparedStatementTest, SysPlanCacheJoinIsDeterministicAcrossThreads) {
  ASSERT_TRUE(Run("PREPARE deep AS SELECT dst FROM tc WHERE src = ?").ok());
  ASSERT_TRUE(Run("EXECUTE deep(2)").ok());
  const char* join_sql =
      "SELECT p.entry, p.sql, p.num_params, t.name "
      "FROM sys.plan_cache p, sys.tables t "
      "WHERE t.name = 'edge' ORDER BY p.entry";
  auto baseline = Run(join_sql, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->table.num_rows(), 1);
  for (int threads : {2, 8}) {
    auto r = Run(join_sql, threads);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->table.ToString(100), baseline->table.ToString(100))
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Executor cache charges: released exactly once, reconciled box stats.
// ---------------------------------------------------------------------------

class ExecutorChargeTest : public PreparedStatementTest {};

TEST_F(ExecutorChargeTest, CacheChargesReleaseExactlyOnceOnDestruction) {
  auto pipeline = db_.Explain("SELECT dst FROM tc WHERE src = 2",
                              QueryOptions(ExecutionStrategy::kMagic));
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ResourceGovernor governor(ResourceBudget::Unlimited());
  // Two executors sharing one governor: without the destructor release,
  // the second run would start with the first run's cache bytes leaked.
  for (int run = 0; run < 2; ++run) {
    std::unique_ptr<QueryGraph> graph = pipeline->graph->Clone();
    ExecOptions options;
    options.governor = &governor;
    Executor executor(graph.get(), db_.catalog(), options);
    auto result = executor.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(governor.peak_bytes(), 0);
  }
  EXPECT_EQ(governor.used_bytes(), 0);
}

TEST_F(ExecutorChargeTest, CorrelatedMemoChargesAlsoRelease) {
  auto pipeline = db_.Explain(
      "SELECT src FROM edge e WHERE src IN (SELECT src FROM tc WHERE "
      "dst = e.dst)",
      QueryOptions(ExecutionStrategy::kOriginal));
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ResourceGovernor governor(ResourceBudget::Unlimited());
  {
    ExecOptions options;
    options.governor = &governor;
    options.memoize_correlation = true;
    Executor executor(pipeline->graph.get(), db_.catalog(), options);
    ASSERT_TRUE(executor.Run().ok());
  }
  EXPECT_EQ(governor.used_bytes(), 0);
}

TEST_F(ExecutorChargeTest, BoxStatsCacheHitsReconcileWithExecStats) {
  // EXPLAIN ANALYZE collects per-box stats; summing their cache_hits must
  // reproduce ExecStats::cache_hits exactly — including hits on already-
  // converged recursive components — at every thread count.
  for (int threads : {1, 2, 8}) {
    auto r = Run("EXPLAIN ANALYZE SELECT src, dst FROM tc", threads);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    int64_t box_hits = 0;
    for (const auto& [id, stats] : r->box_stats) box_hits += stats.cache_hits;
    EXPECT_EQ(box_hits, r->exec_stats.cache_hits) << "threads=" << threads;
    EXPECT_GT(r->exec_stats.cache_hits, 0) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace starmagic
