#include "sql/lexer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

namespace starmagic {
namespace {

std::vector<Token> MustLex(const std::string& sql) {
  auto r = Lex(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = MustLex("select Select SELECT");
  ASSERT_EQ(tokens.size(), 4u);  // 3 + EOF
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[static_cast<size_t>(i)].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[static_cast<size_t>(i)].text, "SELECT");
  }
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = MustLex("avgMgrSal emp_2");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "avgMgrSal");
  EXPECT_EQ(tokens[1].text, "emp_2");
}

TEST(LexerTest, NumbersIntAndDouble) {
  auto tokens = MustLex("42 3.5 1e3 2.5E-1 .5");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.5);
  EXPECT_EQ(tokens[2].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 0.5);
}

TEST(LexerTest, StringsWithEscapedQuote) {
  auto tokens = MustLex("'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = MustLex("= <> != < <= > >= + - * / ( ) , . ;");
  std::vector<TokenType> expected = {
      TokenType::kEq,    TokenType::kNeq,   TokenType::kNeq,
      TokenType::kLt,    TokenType::kLtEq,  TokenType::kGt,
      TokenType::kGtEq,  TokenType::kPlus,  TokenType::kMinus,
      TokenType::kStar,  TokenType::kSlash, TokenType::kLParen,
      TokenType::kRParen, TokenType::kComma, TokenType::kDot,
      TokenType::kSemicolon, TokenType::kEof};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, LineCommentsAreSkipped) {
  auto tokens = MustLex("SELECT -- comment to end\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kIntLiteral);
}

TEST(LexerTest, PositionsTrackLines) {
  auto tokens = MustLex("SELECT\nfoo");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 1);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Lex("SELECT @x").ok());
}

TEST(LexerTest, IntLiteralOverflowIsTypedParseError) {
  // One past INT64_MAX: strtoll would silently saturate without the
  // errno check; the lexer must reject it instead of clamping.
  auto r = Lex("SELECT 9223372036854775808");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().ToString().find("9223372036854775808"),
            std::string::npos);
  EXPECT_FALSE(Lex("SELECT 99999999999999999999999999").ok());
}

TEST(LexerTest, IntLiteralMaxStillLexes) {
  auto tokens = MustLex("9223372036854775807");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, INT64_MAX);
}

TEST(LexerTest, NegativeLiteralIsMinusThenDigits) {
  // INT64_MIN is not writable as one literal: '-' lexes separately, so
  // the digit run 9223372036854775808 would overflow — the writable
  // minimum single-literal magnitude is INT64_MAX.
  auto tokens = MustLex("-9223372036854775807");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kMinus);
  EXPECT_EQ(tokens[1].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[1].int_value, INT64_MAX);
  EXPECT_FALSE(Lex("-9223372036854775808").ok());
}

TEST(LexerTest, QuestionMarkIsParameterToken) {
  auto tokens = MustLex("a = ? AND b > ?");
  std::vector<TokenType> types;
  for (const Token& t : tokens) types.push_back(t.type);
  EXPECT_EQ(std::count(types.begin(), types.end(), TokenType::kQuestion), 2);
}

}  // namespace
}  // namespace starmagic
