#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace starmagic {
namespace {

std::vector<Token> MustLex(const std::string& sql) {
  auto r = Lex(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = MustLex("select Select SELECT");
  ASSERT_EQ(tokens.size(), 4u);  // 3 + EOF
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[static_cast<size_t>(i)].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[static_cast<size_t>(i)].text, "SELECT");
  }
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = MustLex("avgMgrSal emp_2");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "avgMgrSal");
  EXPECT_EQ(tokens[1].text, "emp_2");
}

TEST(LexerTest, NumbersIntAndDouble) {
  auto tokens = MustLex("42 3.5 1e3 2.5E-1 .5");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.5);
  EXPECT_EQ(tokens[2].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 0.5);
}

TEST(LexerTest, StringsWithEscapedQuote) {
  auto tokens = MustLex("'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = MustLex("= <> != < <= > >= + - * / ( ) , . ;");
  std::vector<TokenType> expected = {
      TokenType::kEq,    TokenType::kNeq,   TokenType::kNeq,
      TokenType::kLt,    TokenType::kLtEq,  TokenType::kGt,
      TokenType::kGtEq,  TokenType::kPlus,  TokenType::kMinus,
      TokenType::kStar,  TokenType::kSlash, TokenType::kLParen,
      TokenType::kRParen, TokenType::kComma, TokenType::kDot,
      TokenType::kSemicolon, TokenType::kEof};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, LineCommentsAreSkipped) {
  auto tokens = MustLex("SELECT -- comment to end\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kIntLiteral);
}

TEST(LexerTest, PositionsTrackLines) {
  auto tokens = MustLex("SELECT\nfoo");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 1);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Lex("SELECT @x").ok());
}

}  // namespace
}  // namespace starmagic
