// Exercises the §3.2 property of the cost-based join-order heuristic:
// "usage of the EMST rewrite rule cannot degrade a query plan produced
// without using the EMST rule."
//
// For a battery of queries we optimize twice — once with the full magic
// pipeline (which compares plan costs and keeps the cheaper plan) and once
// with EMST disabled — execute both, and check that the heuristic's choice
// never does more work than the no-EMST plan (within a small tolerance for
// tie-breaking).

#include <cstdio>
#include <string>
#include <vector>

#include "workloads.h"

namespace starmagic::bench {
namespace {

Result<int64_t> WorkOf(Database* db, const std::string& sql,
                       ExecutionStrategy strategy, Tracer* tracer) {
  QueryOptions options(strategy);
  options.tracer = tracer;
  SM_ASSIGN_OR_RETURN(QueryResult r, db->Query(sql, options));
  return r.exec_stats.TotalWork();
}

int Run() {
  BenchObs obs("heuristic");
  Database db;
  EmpDeptConfig config;
  config.num_departments = 200;
  config.num_employees = BenchObs::Smoke() ? 500 : 10000;
  config.num_projects = BenchObs::Smoke() ? 100 : 2000;
  if (Status s = LoadEmpDept(&db, config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = LoadProbe(&db, "probe", 500, 20, 7); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = CreateBenchViews(&db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // A mix of magic-friendly and magic-hostile queries. The last ones ask
  // for *everything* in a view — magic can only add overhead there, so the
  // cost comparison must fall back to the no-EMST plan.
  std::vector<std::string> queries = {
      "SELECT d.deptname, s.avgsalary FROM department d, avgDeptSal s "
      "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
      "SELECT p.tag, a.spend FROM probe p, deptActivity a "
      "WHERE p.pdept = a.dept",
      "SELECT d.deptname, s.workdept, s.avgsalary "
      "FROM department d, avgMgrSal s WHERE d.deptno = s.workdept "
      "AND d.deptname = 'Planning'",
      "SELECT d.deptname, a.spend FROM department d, deptActivity a "
      "WHERE a.dept <= d.deptno AND d.deptname = 'Planning'",
      // Magic-hostile: the whole view is needed.
      "SELECT s.workdept, s.avgsalary FROM avgDeptSal s",
      "SELECT d.deptname, s.avgsalary FROM department d, avgDeptSal s "
      "WHERE d.deptno = s.workdept",
      // Local predicate only on the view output (no join restriction).
      "SELECT s.workdept FROM avgDeptSal s WHERE s.avgsalary > 60000",
  };

  std::printf("Heuristic property (§3.2): chosen plan never worse than the "
              "no-EMST plan\n\n");
  std::printf("%-3s %14s %14s %9s %s\n", "Q", "no-EMST work", "chosen work",
              "chosen", "verdict");
  int failures = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto baseline =
        WorkOf(&db, queries[i], ExecutionStrategy::kOriginal, obs.tracer());
    QueryOptions magic_options(ExecutionStrategy::kMagic);
    magic_options.tracer = obs.tracer();
    auto chosen_r = db.Query(queries[i], magic_options);
    if (!baseline.ok() || !chosen_r.ok()) {
      std::fprintf(stderr, "Q%zu failed: %s %s\n", i,
                   baseline.status().ToString().c_str(),
                   chosen_r.status().ToString().c_str());
      ++failures;
      continue;
    }
    int64_t chosen_work = chosen_r->exec_stats.TotalWork();
    // Tolerance: magic tables add a few probes even when they help overall;
    // "cannot degrade" is about the plan-cost decision, which we verify by
    // measured work with 10% + constant slack.
    bool ok = chosen_work <= *baseline + *baseline / 10 + 64;
    if (!ok) ++failures;
    std::printf("%-3zu %14lld %14lld %9s %s\n", i,
                static_cast<long long>(*baseline),
                static_cast<long long>(chosen_work),
                chosen_r->emst_chosen ? "EMST" : "no-EMST",
                ok ? "ok" : "DEGRADED");
  }
  std::printf("\n%s\n", failures == 0 ? "PROPERTY HOLDS" : "PROPERTY VIOLATED");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
