// Exercises the §3.2 property of the cost-based join-order heuristic:
// "usage of the EMST rewrite rule cannot degrade a query plan produced
// without using the EMST rule."
//
// For a battery of queries we optimize twice — once with the full magic
// pipeline (which compares plan costs and keeps the cheaper plan) and once
// with EMST disabled — execute both, and check that the heuristic's choice
// never does more work than the no-EMST plan (within a small tolerance for
// tie-breaking).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/string_util.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

struct Measured {
  int64_t work = 0;
  double ms = 0;
  int64_t rows = 0;
  bool emst_chosen = false;
};

Result<Measured> MeasureQuery(Database* db, const std::string& sql,
                              ExecutionStrategy strategy, Tracer* tracer) {
  QueryOptions options(strategy);
  options.tracer = tracer;
  auto start = std::chrono::steady_clock::now();
  SM_ASSIGN_OR_RETURN(QueryResult r, db->Query(sql, options));
  auto end = std::chrono::steady_clock::now();
  Measured m;
  m.work = r.exec_stats.TotalWork();
  m.ms = std::chrono::duration<double, std::milli>(end - start).count();
  m.rows = r.table.num_rows();
  m.emst_chosen = r.emst_chosen;
  return m;
}

int Run() {
  BenchObs obs("heuristic");
  Database db;
  EmpDeptConfig config;
  config.num_departments = 200;
  config.num_employees = BenchObs::Smoke() ? 500 : 10000;
  config.num_projects = BenchObs::Smoke() ? 100 : 2000;
  if (Status s = LoadEmpDept(&db, config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = LoadProbe(&db, "probe", 500, 20, 7); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = CreateBenchViews(&db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // A mix of magic-friendly and magic-hostile queries. The last ones ask
  // for *everything* in a view — magic can only add overhead there, so the
  // cost comparison must fall back to the no-EMST plan.
  std::vector<std::string> queries = {
      "SELECT d.deptname, s.avgsalary FROM department d, avgDeptSal s "
      "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
      "SELECT p.tag, a.spend FROM probe p, deptActivity a "
      "WHERE p.pdept = a.dept",
      "SELECT d.deptname, s.workdept, s.avgsalary "
      "FROM department d, avgMgrSal s WHERE d.deptno = s.workdept "
      "AND d.deptname = 'Planning'",
      "SELECT d.deptname, a.spend FROM department d, deptActivity a "
      "WHERE a.dept <= d.deptno AND d.deptname = 'Planning'",
      // Magic-hostile: the whole view is needed.
      "SELECT s.workdept, s.avgsalary FROM avgDeptSal s",
      "SELECT d.deptname, s.avgsalary FROM department d, avgDeptSal s "
      "WHERE d.deptno = s.workdept",
      // Local predicate only on the view output (no join restriction).
      "SELECT s.workdept FROM avgDeptSal s WHERE s.avgsalary > 60000",
  };

  std::printf("Heuristic property (§3.2): chosen plan never worse than the "
              "no-EMST plan\n\n");
  std::printf("%-3s %14s %14s %9s %s\n", "Q", "no-EMST work", "chosen work",
              "chosen", "verdict");
  BenchJson report("heuristic", config.num_employees);
  int failures = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto baseline = MeasureQuery(&db, queries[i], ExecutionStrategy::kOriginal,
                                 obs.tracer());
    auto chosen = MeasureQuery(&db, queries[i], ExecutionStrategy::kMagic,
                               obs.tracer());
    if (!baseline.ok() || !chosen.ok()) {
      std::fprintf(stderr, "Q%zu failed: %s %s\n", i,
                   baseline.status().ToString().c_str(),
                   chosen.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::string workload = StrCat("Q", i);
    report.Add({workload, "no-emst", baseline->work, baseline->ms,
                baseline->rows});
    report.Add({workload, "chosen", chosen->work, chosen->ms, chosen->rows});
    // Tolerance: magic tables add a few probes even when they help overall;
    // "cannot degrade" is about the plan-cost decision, which we verify by
    // measured work with 10% + constant slack.
    bool ok = chosen->work <= baseline->work + baseline->work / 10 + 64;
    if (!ok) ++failures;
    std::printf("%-3zu %14lld %14lld %9s %s\n", i,
                static_cast<long long>(baseline->work),
                static_cast<long long>(chosen->work),
                chosen->emst_chosen ? "EMST" : "no-EMST",
                ok ? "ok" : "DEGRADED");
  }
  std::printf("\n%s\n", failures == 0 ? "PROPERTY HOLDS" : "PROPERTY VIOLATED");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
