// Magic sets on recursion (§4: "the EMST rule applies to nonrecursive and
// general recursive queries with stratified negation and aggregation").
//
// The classic demonstration: transitive closure with a bound source.
// Original evaluates the full closure; magic restricts the fixpoint to
// tuples reachable from the bound source via a recursive magic table.

#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

struct Measured {
  double ms = 0;
  int64_t work = 0;
  int64_t rows = 0;
  int64_t iters = 0;
};

Result<Measured> Measure(Database* db, const std::string& sql,
                         ExecutionStrategy strategy, Tracer* tracer) {
  QueryOptions options(strategy);
  options.tracer = tracer;
  SM_ASSIGN_OR_RETURN(PipelineResult p, db->Explain(sql, options));
  Measured m;
  ExecOptions exec_options;
  exec_options.tracer = tracer;
  for (int i = 0; i < 1; ++i) {
    Executor executor(p.graph.get(), db->catalog(), exec_options);
    auto start = std::chrono::steady_clock::now();
    SM_ASSIGN_OR_RETURN(Table t, executor.Run());
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1000.0;
    if (i == 0 || ms < m.ms) m.ms = ms;
    m.work = executor.stats().TotalWork();
    m.rows = t.num_rows();
    m.iters = executor.stats().fixpoint_iterations;
  }
  return m;
}

int Run() {
  BenchObs obs("recursive");
  BenchJson report("recursive", BenchObs::Smoke() ? 60 : 400);
  Database db;
  if (Status s = LoadEdges(&db, BenchObs::Smoke() ? 60 : 400, 2.5, 2024);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = db.Execute(
          "CREATE RECURSIVE VIEW tc (src, dst) AS "
          "SELECT src, dst FROM edge UNION "
          "SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const char* bound_query = "SELECT src, dst FROM tc WHERE src = 5";
  const char* full_query = "SELECT COUNT(*) AS pairs FROM tc";

  std::printf("Recursive magic: transitive closure over %d nodes\n\n",
              BenchObs::Smoke() ? 60 : 400);
  std::printf("bound-source query: %s\n", bound_query);
  std::printf("%-11s %10s %12s %8s %10s\n", "strategy", "time(ms)", "work",
              "rows", "fixpoint");
  Measured original;
  Measured magic;
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kOriginal, ExecutionStrategy::kMagic}) {
    auto m = Measure(&db, bound_query, strategy, obs.tracer());
    if (!m.ok()) {
      std::fprintf(stderr, "%s: %s\n", StrategyName(strategy),
                   m.status().ToString().c_str());
      return 1;
    }
    std::printf("%-11s %10.2f %12lld %8lld %10lld\n", StrategyName(strategy),
                m->ms, static_cast<long long>(m->work),
                static_cast<long long>(m->rows),
                static_cast<long long>(m->iters));
    report.Add({"bound_source", StrategyName(strategy), m->work, m->ms,
                m->rows});
    if (strategy == ExecutionStrategy::kOriginal) original = *m;
    if (strategy == ExecutionStrategy::kMagic) magic = *m;
  }
  if (original.rows != magic.rows) {
    std::printf("RESULTS DIVERGE (%lld vs %lld rows)\n",
                static_cast<long long>(original.rows),
                static_cast<long long>(magic.rows));
    return 1;
  }
  double ratio = magic.work > 0
                     ? static_cast<double>(original.work) / magic.work
                     : 0;
  std::printf("\nmagic restricts the fixpoint: %.1fx less work\n", ratio);

  std::printf("\nfull-closure query (magic cannot help; the §3.2 heuristic "
              "must not degrade it): %s\n", full_query);
  auto full_orig =
      Measure(&db, full_query, ExecutionStrategy::kOriginal, obs.tracer());
  auto full_magic =
      Measure(&db, full_query, ExecutionStrategy::kMagic, obs.tracer());
  if (!full_orig.ok() || !full_magic.ok()) {
    std::fprintf(stderr, "%s %s\n", full_orig.status().ToString().c_str(),
                 full_magic.status().ToString().c_str());
    return 1;
  }
  report.Add({"full_closure", "Original", full_orig->work, full_orig->ms,
              full_orig->rows});
  report.Add({"full_closure", "EMST", full_magic->work, full_magic->ms,
              full_magic->rows});
  std::printf("original work=%lld, magic-strategy work=%lld\n",
              static_cast<long long>(full_orig->work),
              static_cast<long long>(full_magic->work));
  bool ok = ratio >= 2.0 &&
            full_magic->work <= full_orig->work + full_orig->work / 10 + 64;
  std::printf("%s\n", ok ? "CLAIMS REPRODUCED" : "CLAIMS NOT REPRODUCED");
  return obs.Verdict(ok);
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
