#ifndef STARMAGIC_BENCH_WORKLOADS_H_
#define STARMAGIC_BENCH_WORKLOADS_H_

#include <cstdint>
#include <string>

#include "engine/database.h"

namespace starmagic::bench {

/// Observability hooks shared by the bench binaries, driven by env vars:
///   STARMAGIC_TRACE=1       record query-lifecycle spans; the destructor
///                           writes TRACE_<name>.json into the cwd.
///   STARMAGIC_BENCH_SMOKE=1 benches shrink their data scales (each bench
///                           checks Smoke() itself) and claim gates become
///                           informational instead of failing the process.
class BenchObs {
 public:
  explicit BenchObs(std::string name);
  ~BenchObs();

  /// The span sink to thread into QueryOptions/ExecOptions; null when
  /// tracing is off so instrumented code stays on its zero-cost path.
  Tracer* tracer() { return tracer_.enabled() ? &tracer_ : nullptr; }

  static bool Smoke();

  /// Exit code for a reproduction claim: failures are forgiven in smoke
  /// mode (tiny scales cannot reproduce the paper's ratios).
  int Verdict(bool pass) const { return pass || Smoke() ? 0 : 1; }

 private:
  std::string name_;
  Tracer tracer_;
};

/// Deterministic pseudo-random generator (splitmix64) so every bench run
/// sees identical data.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next();
  /// Uniform in [0, n).
  int64_t Uniform(int64_t n);
  /// Zipf-ish skewed value in [0, n): low values are much more frequent.
  int64_t Skewed(int64_t n, double exponent = 1.2);

 private:
  uint64_t state_;
};

/// Parameters for the employee/department corpus used by Table 1.
struct EmpDeptConfig {
  int64_t num_departments = 2000;
  int64_t num_employees = 50000;
  int64_t num_projects = 5000;
  uint64_t seed = 42;
};

/// Creates and populates:
///   department(deptno, deptname, mgrno, budget)  PK deptno
///   employee(empno, empname, workdept, salary, bonus)  PK empno
///   project(projno, projname, deptno, budget)  PK projno
/// plus ANALYZE. Department 7 is named 'Planning'.
Status LoadEmpDept(Database* db, const EmpDeptConfig& config);

/// A probe table with controllable duplication: `<name>(pdept, tag)` with
/// `rows` rows whose pdept values are drawn from `distinct_depts` distinct
/// departments (so rows/distinct_depts duplicates per value on average).
Status LoadProbe(Database* db, const std::string& name, int64_t rows,
                 int64_t distinct_depts, uint64_t seed);

/// Registers the decision-support views shared by the Table 1 experiments:
///   avgDeptSal(workdept, avgsalary)        — aggregation over employee
///   deptActivity(dept, people, spend)      — aggregation over a join with
///                                            fan-out (employee x project)
///   bigDeptActivity(dept, people, spend)   — a view over deptActivity
/// plus the paper's mgrSal / avgMgrSal (CreatePaperViews).
Status CreateBenchViews(Database* db);

/// Directed graph for recursion benches: `edge(src, dst)` with
/// `num_nodes` nodes and roughly `num_nodes * avg_degree` edges, layered
/// so that paths terminate.
Status LoadEdges(Database* db, int64_t num_nodes, double avg_degree,
                 uint64_t seed);

/// Registers the avgMgrSal / mgrSal views of the paper's Example 1.1.
Status CreatePaperViews(Database* db);

}  // namespace starmagic::bench

#endif  // STARMAGIC_BENCH_WORKLOADS_H_
