// Component micro-benchmarks (google-benchmark): parsing, QGM building,
// the rewrite pipeline with and without EMST, and end-to-end execution of
// the paper's query D per strategy. Useful for tracking optimizer overhead
// (the paper stresses that EMST must coexist with optimizer pruning).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_json.h"
#include "qgm/builder.h"
#include "sql/parser.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

const char* kQueryD =
    "SELECT d.deptname, s.workdept, s.avgsalary "
    "FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'";

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    EmpDeptConfig config;
    config.num_departments = 200;
    config.num_employees = BenchObs::Smoke() ? 500 : 10000;
    config.num_projects = BenchObs::Smoke() ? 100 : 2000;
    Status s = LoadEmpDept(d, config);
    if (s.ok()) s = CreateBenchViews(d);
    if (!s.ok()) {
      std::fprintf(stderr, "setup: %s\n", s.ToString().c_str());
      std::abort();
    }
    return d;
  }();
  return db;
}

void BM_ParseQueryD(benchmark::State& state) {
  for (auto _ : state) {
    auto r = ParseQuery(kQueryD);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseQueryD);

void BM_BuildQgm(benchmark::State& state) {
  Database* db = SharedDb();
  auto blob = ParseQuery(kQueryD);
  for (auto _ : state) {
    QgmBuilder builder(db->catalog());
    auto g = builder.Build(**blob);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BuildQgm);

void BM_OptimizePipeline(benchmark::State& state) {
  Database* db = SharedDb();
  ExecutionStrategy strategy = static_cast<ExecutionStrategy>(state.range(0));
  for (auto _ : state) {
    auto r = db->Explain(kQueryD, QueryOptions(strategy));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizePipeline)
    ->Arg(static_cast<int>(ExecutionStrategy::kOriginal))
    ->Arg(static_cast<int>(ExecutionStrategy::kMagic));

void BM_ExecuteQueryD(benchmark::State& state) {
  Database* db = SharedDb();
  ExecutionStrategy strategy = static_cast<ExecutionStrategy>(state.range(0));
  auto pipeline = db->Explain(kQueryD, QueryOptions(strategy));
  if (!pipeline.ok()) {
    state.SkipWithError(pipeline.status().ToString().c_str());
    return;
  }
  ExecOptions exec_options;
  exec_options.memoize_correlation = strategy != ExecutionStrategy::kCorrelated;
  for (auto _ : state) {
    Executor executor(pipeline->graph.get(), db->catalog(), exec_options);
    auto r = executor.Run();
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExecuteQueryD)
    ->Arg(static_cast<int>(ExecutionStrategy::kOriginal))
    ->Arg(static_cast<int>(ExecutionStrategy::kCorrelated))
    ->Arg(static_cast<int>(ExecutionStrategy::kMagic));

// One traced optimize+execute pass of query D. Benchmark iterations run
// untraced — google-benchmark repeats until timings stabilize, and a span
// per iteration would make the trace unbounded.
void TracedWarmup() {
  BenchObs obs("microbench");
  if (obs.tracer() == nullptr) return;
  Database* db = SharedDb();
  QueryOptions options(ExecutionStrategy::kMagic);
  options.tracer = obs.tracer();
  auto pipeline = db->Explain(kQueryD, options);
  if (!pipeline.ok()) return;
  ExecOptions exec_options;
  exec_options.tracer = obs.tracer();
  Executor executor(pipeline->graph.get(), db->catalog(), exec_options);
  auto r = executor.Run();
  (void)r;
}

// One deterministic optimize+execute pass of query D per strategy for the
// regression harness (BENCH_microbench.json). Separate from the benchmark
// iterations, whose timings are machine-noisy by design.
void EmitBenchJson() {
  BenchJson report("microbench", BenchObs::Smoke() ? 500 : 10000);
  Database* db = SharedDb();
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kOriginal, ExecutionStrategy::kCorrelated,
        ExecutionStrategy::kMagic}) {
    auto pipeline = db->Explain(kQueryD, QueryOptions(strategy));
    if (!pipeline.ok()) continue;
    ExecOptions exec_options;
    exec_options.memoize_correlation =
        strategy != ExecutionStrategy::kCorrelated;
    Executor executor(pipeline->graph.get(), db->catalog(), exec_options);
    auto start = std::chrono::steady_clock::now();
    auto r = executor.Run();
    auto end = std::chrono::steady_clock::now();
    if (!r.ok()) continue;
    report.Add({"queryD", StrategyName(strategy),
                executor.stats().TotalWork(),
                std::chrono::duration<double, std::milli>(end - start).count(),
                r->num_rows()});
  }
}

}  // namespace
}  // namespace starmagic::bench

int main(int argc, char** argv) {
  starmagic::bench::TracedWarmup();
  starmagic::bench::EmitBenchJson();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
