// Secondary-index bench: Table-1-style bound workloads executed three
// ways — EMST with declared indexes, EMST forced to scans, and no EMST —
// reporting wall time and deterministic TotalWork per combination. The
// interesting comparison is EMST+index vs EMST+scan: the magic boxes are
// what turn indexes into point probes.
//
// Emits BENCH_index.json in the unified bench schema (see bench_json.h);
// validate/diff it with scripts/bench_report.py.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

using Sample = BenchSample;

Result<Sample> Measure(Database* db, const std::string& sql,
                       ExecutionStrategy strategy, bool use_indexes,
                       int repetitions, Tracer* tracer) {
  QueryOptions options(strategy);
  options.tracer = tracer;
  SM_ASSIGN_OR_RETURN(PipelineResult pipeline, db->Explain(sql, options));
  ExecOptions exec_options;
  exec_options.memoize_correlation = strategy != ExecutionStrategy::kCorrelated;
  exec_options.use_secondary_indexes = use_indexes;
  exec_options.tracer = tracer;
  Sample sample;
  for (int i = 0; i < repetitions; ++i) {
    Executor executor(pipeline.graph.get(), db->catalog(), exec_options);
    auto start = std::chrono::steady_clock::now();
    SM_ASSIGN_OR_RETURN(Table table, executor.Run());
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1000.0;
    if (i == 0 || ms < sample.wall_ms) sample.wall_ms = ms;
    sample.total_work = executor.stats().TotalWork();
    sample.rows = table.num_rows();
  }
  return sample;
}

int Run() {
  BenchObs obs("index");
  BenchJson report("index", BenchObs::Smoke() ? 400 : 20000);
  Database db;
  auto check = [](const Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  EmpDeptConfig config;
  config.num_departments = 400;
  config.num_employees = 20000;
  config.num_projects = 4000;
  if (BenchObs::Smoke()) {
    config.num_departments = 40;
    config.num_employees = 400;
    config.num_projects = 80;
  }
  check(LoadEmpDept(&db, config));
  check(LoadProbe(&db, "probe_b", BenchObs::Smoke() ? 40 : 200, 8, 101));
  check(LoadProbe(&db, "probe_c", BenchObs::Smoke() ? 100 : 2000, 40, 102));
  check(CreateBenchViews(&db));
  check(db.Execute("CREATE INDEX emp_workdept ON employee (workdept)"));
  check(db.Execute("CREATE INDEX emp_empno ON employee (empno)"));
  check(db.Execute(
      "CREATE INDEX dept_deptno ON department (deptno) USING ORDERED"));
  check(db.Execute("CREATE INDEX proj_deptno ON project (deptno)"));
  check(db.AnalyzeAll());

  struct Workload {
    const char* name;
    std::string sql;
  };
  std::vector<Workload> workloads = {
      {"expB_small_probe_aggregate_view",
       "SELECT p.tag, s.avgsalary FROM probe_b p, avgDeptSal s "
       "WHERE p.pdept = s.workdept"},
      {"expC_large_probe_join_view",
       "SELECT p.tag, a.spend FROM probe_c p, deptActivity a "
       "WHERE p.pdept = a.dept"},
      {"expG_point_restricted_view",
       "SELECT d.deptname, s.workdept, s.avgsalary "
       "FROM department d, avgMgrSal s "
       "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'"},
      {"expH_range_condition_magic",
       "SELECT d.deptname, a.spend FROM department d, deptActivity a "
       "WHERE a.dept <= d.deptno AND d.deptname = 'Planning'"},
  };

  struct Mode {
    const char* name;
    ExecutionStrategy strategy;
    bool use_indexes;
  };
  const Mode modes[] = {
      {"emst+index", ExecutionStrategy::kMagic, true},
      {"emst+scan", ExecutionStrategy::kMagic, false},
      {"no-emst", ExecutionStrategy::kOriginal, true},
  };

  std::printf("%-34s %-12s %14s %12s %8s\n", "workload", "strategy",
              "TotalWork", "wall(ms)", "rows");
  for (const Workload& w : workloads) {
    int64_t base_rows = -1;
    for (const Mode& m : modes) {
      auto sample = Measure(&db, w.sql, m.strategy, m.use_indexes, 3,
                            obs.tracer());
      if (!sample.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", w.name, m.name,
                     sample.status().ToString().c_str());
        return 1;
      }
      sample->workload = w.name;
      sample->strategy = m.name;
      std::printf("%-34s %-12s %14lld %12.3f %8lld\n", w.name, m.name,
                  static_cast<long long>(sample->total_work), sample->wall_ms,
                  static_cast<long long>(sample->rows));
      if (base_rows < 0) base_rows = sample->rows;
      if (sample->rows != base_rows) {
        std::fprintf(stderr, "%s: row count diverged across modes\n", w.name);
        return 1;
      }
      report.Add(std::move(*sample));
    }
  }
  Status written = report.Write();
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
