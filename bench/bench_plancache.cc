// Plan-cache compile savings: the same magic-rewritten queries executed
// cold (full parse -> rewrite -> optimize -> execute pipeline per run) and
// cached (EXECUTE of a prepared statement: plan-cache hit, clone + bind +
// execute only). The claim under test is twofold:
//
//   1. Identity — result rows and deterministic work counters are
//      bit-identical cold vs cached, at 1, 2, and 8 threads, and every
//      cached run actually hits (plan_cache_hit with zero rule fires on
//      the hot path). Any divergence is a correctness bug and fails hard
//      at every scale, smoke included.
//   2. Savings — skipping compilation makes the cached path faster than
//      the cold path on repeated executions (min over several reps).
//      Informational in smoke mode, where runs are too short to measure.
//
// Writes BENCH_plancache.json with paired "plan_cache=cold" /
// "plan_cache=cached" strategies per workload cell, which
// scripts/bench_report.py cross-checks for identity again offline.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/string_util.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

struct Measured {
  double ms = 0;
  int64_t work = 0;
  int64_t rows = 0;
};

/// One Query() call, wall-clocked end to end — for the cold side that
/// includes the whole compile pipeline, for the cached side the lookup,
/// clone, bind, and execution.
Result<Measured> MeasureOnce(Database* db, const std::string& sql,
                             const QueryOptions& options, bool expect_hit) {
  auto start = std::chrono::steady_clock::now();
  SM_ASSIGN_OR_RETURN(QueryResult r, db->Query(sql, options));
  auto end = std::chrono::steady_clock::now();
  if (expect_hit && !r.plan_cache_hit) {
    return Status::Internal(StrCat("expected a plan-cache hit for: ", sql));
  }
  if (expect_hit && !r.rule_fires.empty()) {
    return Status::Internal(
        StrCat("rule fires on the cached hot path for: ", sql));
  }
  if (!expect_hit && r.plan_cache_hit) {
    return Status::Internal(StrCat("unexpected plan-cache hit for: ", sql));
  }
  Measured m;
  m.ms = std::chrono::duration_cast<std::chrono::microseconds>(end - start)
             .count() /
         1000.0;
  m.work = r.exec_stats.TotalWork();
  m.rows = r.table.num_rows();
  return m;
}

struct Workload {
  std::string name;
  std::string prepare;   ///< PREPARE <name> AS <body with ?>
  std::string execute;   ///< EXECUTE <name>(<args>)
  std::string cold_sql;  ///< the body with the arguments inlined
};

int Run() {
  BenchObs obs("plancache");
  const bool smoke = BenchObs::Smoke();
  const int reps = smoke ? 5 : 9;

  const int64_t nodes = smoke ? 300 : 3000;
  Database db;
  EmpDeptConfig emp_config;
  if (smoke) {
    emp_config.num_departments = 200;
    emp_config.num_employees = 5'000;
    emp_config.num_projects = 500;
  }
  if (Status st = LoadEdges(&db, nodes, 3.0, 11); !st.ok() ||
      !(st = db.ExecuteScript(R"sql(
        CREATE RECURSIVE VIEW tc (src, dst) AS
          SELECT src, dst FROM edge
          UNION
          SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src;
      )sql"))
           .ok() ||
      !(st = LoadEmpDept(&db, emp_config)).ok() ||
      !(st = CreateBenchViews(&db)).ok() ||
      !(st = db.Execute("ANALYZE")).ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  BenchJson report("plancache", nodes);

  const std::vector<Workload> workloads = {
      {"magic_recursive",
       "PREPARE deep AS SELECT dst FROM tc WHERE src = ? ORDER BY dst",
       "EXECUTE deep(1)",
       "SELECT dst FROM tc WHERE src = 1 ORDER BY dst"},
      {"magic_view_join",
       "PREPARE depts AS SELECT d.deptname, a.avgsalary "
       "FROM department d, avgDeptSal a "
       "WHERE d.deptno = a.workdept AND d.deptno = ? ORDER BY d.deptname",
       "EXECUTE depts(7)",
       "SELECT d.deptname, a.avgsalary FROM department d, avgDeptSal a "
       "WHERE d.deptno = a.workdept AND d.deptno = 7 ORDER BY d.deptname"},
  };

  std::printf(
      "Plan-cache compile savings (magic strategy, %d reps, min wall)\n\n",
      reps);
  std::printf("%-22s %-8s %-18s %10s %12s %8s\n", "workload", "threads",
              "strategy", "time(ms)", "work", "rows");

  bool identical = true;
  bool savings_ok = true;
  for (const Workload& w : workloads) {
    // PREPARE once; the compile it performs warms the cache for every
    // thread count (the plan is thread-count independent).
    QueryOptions prep_options(ExecutionStrategy::kMagic);
    if (auto r = db.Query(w.prepare, prep_options); !r.ok()) {
      std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    for (int threads : {1, 2, 8}) {
      QueryOptions options(ExecutionStrategy::kMagic);
      options.num_threads = threads;
      Measured cold, cached;
      for (int r = 0; r < reps; ++r) {
        // Interleave cold/cached so machine-load drift spreads over both.
        for (bool hit : {false, true}) {
          auto m = MeasureOnce(&db, hit ? w.execute : w.cold_sql, options,
                               hit);
          if (!m.ok()) {
            std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                         m.status().ToString().c_str());
            return 1;
          }
          Measured* best = hit ? &cached : &cold;
          if (r == 0 || m->ms < best->ms) best->ms = m->ms;
          best->work = m->work;
          best->rows = m->rows;
        }
      }
      if (cached.work != cold.work || cached.rows != cold.rows) {
        std::fprintf(stderr,
                     "FAIL %s at %d threads: cached work %lld vs %lld, "
                     "rows %lld vs %lld\n",
                     w.name.c_str(), threads,
                     static_cast<long long>(cached.work),
                     static_cast<long long>(cold.work),
                     static_cast<long long>(cached.rows),
                     static_cast<long long>(cold.rows));
        identical = false;
      }
      if (threads == 1 && cached.ms >= cold.ms) savings_ok = false;
      std::string cell = StrCat(w.name, "_t", threads);
      for (bool hit : {false, true}) {
        const Measured& m = hit ? cached : cold;
        std::printf("%-22s %-8d %-18s %10.3f %12lld %8lld\n", cell.c_str(),
                    threads, hit ? "plan_cache=cached" : "plan_cache=cold",
                    m.ms, static_cast<long long>(m.work),
                    static_cast<long long>(m.rows));
        BenchSample sample;
        sample.workload = cell;
        sample.strategy = hit ? "plan_cache=cached" : "plan_cache=cold";
        sample.total_work = m.work;
        sample.wall_ms = m.ms;
        sample.rows = m.rows;
        report.Add(std::move(sample));
      }
    }
    std::printf("\n");
  }

  PlanCacheStats stats = db.plan_cache()->stats();
  std::printf("plan cache: hits=%lld misses=%lld invalidations=%lld "
              "evictions=%lld resident=%lld bytes\n",
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.misses),
              static_cast<long long>(stats.invalidations),
              static_cast<long long>(stats.evictions),
              static_cast<long long>(db.plan_cache()->resident_bytes()));

  // Identity is a correctness claim: a cached plan that computes something
  // different from a cold compile fails at every scale, smoke included.
  if (!identical) return 1;
  if (Status st = report.Write(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("claim: cached execution identical to cold compile: PASS\n");
  std::printf("claim: plan-cache hit faster than cold compile: %s%s\n",
              savings_ok ? "PASS" : "FAIL",
              smoke ? " (informational in smoke)" : "");
  return obs.Verdict(savings_ok);
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
