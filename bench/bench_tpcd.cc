// TPC-D-style decision-support queries (the paper's conclusion: "much
// effort has been spent to optimize TPCD benchmark queries by hand... The
// magic-sets transformation provides an opportunity to optimize decision
// support queries in a stable manner").
//
// A scaled-down TPC-D-like schema (region, nation, supplier, customer,
// orders, lineitem) with aggregate views in the spirit of Q5/Q10/Q11-style
// questions; each query runs under the three strategies and must agree.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/string_util.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

Status LoadTpcd(Database* db, int64_t scale_percent) {
  SM_RETURN_IF_ERROR(db->ExecuteScript(R"sql(
    CREATE TABLE region   (regionkey INTEGER, rname VARCHAR);
    CREATE TABLE nation   (nationkey INTEGER, nname VARCHAR,
                           regionkey INTEGER);
    CREATE TABLE supplier (suppkey INTEGER, sname VARCHAR,
                           nationkey INTEGER, acctbal DOUBLE);
    CREATE TABLE customer (custkey INTEGER, cname VARCHAR,
                           nationkey INTEGER, segment VARCHAR);
    CREATE TABLE orders   (orderkey INTEGER, custkey INTEGER,
                           totalprice DOUBLE, opriority INTEGER);
    CREATE TABLE lineitem (orderkey INTEGER, suppkey INTEGER,
                           quantity INTEGER, price DOUBLE,
                           discount DOUBLE);
  )sql"));

  Rng rng(4242);
  const int64_t nations = 25;
  const int64_t suppliers = 200 * scale_percent / 100;
  const int64_t customers = 1500 * scale_percent / 100;
  const int64_t orders = 6000 * scale_percent / 100;
  const int64_t lineitems_per_order = 3;

  Table* region = db->catalog()->GetTable("region");
  for (int64_t r = 0; r < 5; ++r) {
    SM_RETURN_IF_ERROR(region->Append(
        {Value::Int(r), Value::String(r == 2 ? std::string("ASIA") : StrCat("R", r))}));
  }
  Table* nation = db->catalog()->GetTable("nation");
  for (int64_t n = 0; n < nations; ++n) {
    SM_RETURN_IF_ERROR(nation->Append(
        {Value::Int(n), Value::String(StrCat("N", n)), Value::Int(n % 5)}));
  }
  Table* supplier = db->catalog()->GetTable("supplier");
  for (int64_t s = 0; s < suppliers; ++s) {
    SM_RETURN_IF_ERROR(supplier->Append(
        {Value::Int(s), Value::String(StrCat("S", s)),
         Value::Int(rng.Uniform(nations)),
         Value::Double(static_cast<double>(rng.Uniform(10000)))}));
  }
  Table* customer = db->catalog()->GetTable("customer");
  for (int64_t c = 0; c < customers; ++c) {
    SM_RETURN_IF_ERROR(customer->Append(
        {Value::Int(c), Value::String(StrCat("C", c)),
         Value::Int(rng.Uniform(nations)),
         Value::String(rng.Uniform(5) == 0 ? "BUILDING"
                                           : StrCat("SEG", rng.Uniform(4)))}));
  }
  Table* orders_t = db->catalog()->GetTable("orders");
  Table* lineitem = db->catalog()->GetTable("lineitem");
  for (int64_t o = 0; o < orders; ++o) {
    SM_RETURN_IF_ERROR(orders_t->Append(
        {Value::Int(o), Value::Int(rng.Uniform(customers)),
         Value::Double(static_cast<double>(1000 + rng.Uniform(90000)) / 10),
         Value::Int(rng.Uniform(5))}));
    for (int64_t l = 0; l < lineitems_per_order; ++l) {
      SM_RETURN_IF_ERROR(lineitem->Append(
          {Value::Int(o), Value::Int(rng.Uniform(suppliers)),
           Value::Int(1 + rng.Uniform(50)),
           Value::Double(static_cast<double>(100 + rng.Uniform(9900)) / 10),
           Value::Double(static_cast<double>(rng.Uniform(10)) / 100)}));
    }
  }
  SM_RETURN_IF_ERROR(db->SetPrimaryKey("region", {"regionkey"}));
  SM_RETURN_IF_ERROR(db->SetPrimaryKey("nation", {"nationkey"}));
  SM_RETURN_IF_ERROR(db->SetPrimaryKey("supplier", {"suppkey"}));
  SM_RETURN_IF_ERROR(db->SetPrimaryKey("customer", {"custkey"}));
  SM_RETURN_IF_ERROR(db->SetPrimaryKey("orders", {"orderkey"}));

  // Aggregate views: revenue per supplier and order volume per customer —
  // the expensive intermediates TPC-D-style questions drill into.
  SM_RETURN_IF_ERROR(db->ExecuteScript(R"sql(
    CREATE VIEW suppRevenue (suppkey, revenue, items) AS
      SELECT suppkey, SUM(price * (1 - discount)), COUNT(*)
      FROM lineitem GROUP BY suppkey;
    CREATE VIEW custVolume (custkey, spent, norders) AS
      SELECT custkey, SUM(totalprice), COUNT(*)
      FROM orders GROUP BY custkey;
  )sql"));
  return db->AnalyzeAll();
}

struct QuerySpec {
  const char* id;
  const char* description;
  std::string sql;
};

int Run(int64_t scale) {
  BenchObs obs("tpcd");
  BenchJson report("tpcd", scale);
  Database db;
  if (Status s = LoadTpcd(&db, scale); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::vector<QuerySpec> queries = {
      {"Q-A", "revenue of suppliers in one region (Q5-flavoured)",
       "SELECT n.nname, s.sname, v.revenue "
       "FROM region r, nation n, supplier s, suppRevenue v "
       "WHERE r.regionkey = n.regionkey AND n.nationkey = s.nationkey "
       "AND s.suppkey = v.suppkey AND r.rname = 'ASIA' "
       "AND v.revenue > 5000"},
      {"Q-B", "order volume of BUILDING-segment customers (Q10-flavoured)",
       "SELECT c.cname, v.spent, v.norders "
       "FROM customer c, custVolume v "
       "WHERE c.custkey = v.custkey AND c.segment = 'BUILDING' "
       "AND v.spent > 20000"},
      {"Q-C", "top suppliers of one nation (Q11-flavoured)",
       "SELECT s.sname, v.revenue FROM nation n, supplier s, suppRevenue v "
       "WHERE n.nationkey = s.nationkey AND s.suppkey = v.suppkey "
       "AND n.nname = 'N7' "
       "AND v.revenue > (SELECT AVG(revenue) FROM suppRevenue)"},
      {"Q-D", "customers with above-average volume in a nation",
       "SELECT c.cname, v.spent FROM customer c, custVolume v "
       "WHERE c.custkey = v.custkey AND c.nationkey = 3 AND v.norders >= 2"},
  };

  std::printf("TPC-D-style decision support (scale=%lld%%), work counters\n\n",
              static_cast<long long>(scale));
  std::printf("%-5s %12s %12s %12s  %8s  %s\n", "Q", "Original", "Correlated",
              "EMST", "rows", "agree");
  bool all_ok = true;
  for (const QuerySpec& q : queries) {
    int64_t work[3] = {0, 0, 0};
    Table results[3];
    bool ok = true;
    int i = 0;
    for (ExecutionStrategy strategy :
         {ExecutionStrategy::kOriginal, ExecutionStrategy::kCorrelated,
          ExecutionStrategy::kMagic}) {
      QueryOptions options(strategy);
      options.tracer = obs.tracer();
      auto pipeline = db.Explain(q.sql, options);
      if (!pipeline.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", q.id, StrategyName(strategy),
                     pipeline.status().ToString().c_str());
        return 1;
      }
      ExecOptions exec_options;
      exec_options.memoize_correlation =
          strategy != ExecutionStrategy::kCorrelated;
      exec_options.tracer = obs.tracer();
      Executor executor(pipeline->graph.get(), db.catalog(), exec_options);
      auto start = std::chrono::steady_clock::now();
      auto result = executor.Run();
      auto end = std::chrono::steady_clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", q.id, StrategyName(strategy),
                     result.status().ToString().c_str());
        return 1;
      }
      work[i] = executor.stats().TotalWork();
      results[i] = std::move(*result);
      report.Add({q.id, StrategyName(strategy), work[i],
                  std::chrono::duration<double, std::milli>(end - start)
                      .count(),
                  results[i].num_rows()});
      ++i;
    }
    ok = Table::BagEquals(results[0], results[1]) &&
         Table::BagEquals(results[0], results[2]);
    all_ok = all_ok && ok;
    std::printf("%-5s %12lld %12lld %12lld  %8lld  %s\n", q.id,
                static_cast<long long>(work[0]),
                static_cast<long long>(work[1]),
                static_cast<long long>(work[2]),
                static_cast<long long>(results[0].num_rows()),
                ok ? "yes" : "NO");
    std::printf("      -- %s\n", q.description);
  }
  std::printf("\n%s\n", all_ok
                            ? "EMST optimizes decision-support queries in a "
                              "stable manner (paper's conclusion)"
                            : "RESULTS DIVERGED");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace starmagic::bench

int main(int argc, char** argv) {
  int64_t scale = starmagic::bench::BenchObs::Smoke() ? 10 : 100;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::atoll(arg.c_str() + 8);
  }
  return starmagic::bench::Run(scale);
}
