// Reproduces Figures 4 and 5 of the paper: the QGM query graph of query D
// (Example 1.1) before query-rewrite and after phases 1, 2, and 3, plus
// the SQL-ish rendering of every box (Figure 5).
//
// Checks, mirroring Example 4.1:
//   * phase 1 merges AVGMGRSAL and MGRSAL select-boxes (graph shrinks),
//   * phase 2 introduces a supplementary-magic-box (sm_QUERY) and magic
//     boxes for the adorned views (m_*), and the groupby box is adorned bf,
//   * phase 3 merges the magic boxes away again (SD2' shape): the final
//     graph has exactly one extra box and one extra join relative to
//     phase 1, as the paper states in the introduction.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "qgm/printer.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

int CountSubstring(const std::string& text, const std::string& needle) {
  int n = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

int Run() {
  BenchObs obs("figure4");
  Database db;
  EmpDeptConfig config;
  config.num_departments = 50;
  config.num_employees = BenchObs::Smoke() ? 200 : 1000;
  config.num_projects = 100;
  if (Status s = LoadEmpDept(&db, config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = CreatePaperViews(&db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const char* query_d =
      "SELECT d.deptname, s.workdept, s.avgsalary "
      "FROM department d, avgMgrSal s "
      "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'";

  QueryOptions options(ExecutionStrategy::kMagic);
  options.pipeline.capture_snapshots = true;
  options.pipeline.cost_compare = false;  // always show the transformed graph
  options.tracer = obs.tracer();
  auto r = db.Explain(query_d, options);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 4: QGM query graph of query D through the rewrite "
              "phases\n\n");
  const std::string* phase1 = nullptr;
  const std::string* phase2 = nullptr;
  const std::string* phase3 = nullptr;
  for (const auto& [label, snapshot] : r->snapshots) {
    std::printf("======== %s ========\n%s\n", label.c_str(), snapshot.c_str());
    if (label == "after-phase1") phase1 = &snapshot;
    if (label == "after-phase2") phase2 = &snapshot;
    if (label == "after-phase3") phase3 = &snapshot;
  }
  std::printf("======== final graph as SQL (Figure 5) ========\n%s\n",
              GraphToSql(*r->graph).c_str());

  int failures = 0;
  auto expect = [&failures](bool cond, const char* what) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    if (!cond) ++failures;
  };
  std::printf("Example 4.1 structural checks:\n");
  expect(phase1 != nullptr && phase2 != nullptr && phase3 != nullptr,
         "snapshots captured for all three phases");
  if (phase1 && phase2 && phase3) {
    expect(CountSubstring(*phase1, "AVGMGRSAL_T1") >= 1 &&
               CountSubstring(*phase1, "(MGRSAL)") == 0,
           "phase 1 merged MGRSAL into the groupby triplet (merge rule)");
    expect(CountSubstring(*phase2, "supplementary-magic") >= 1,
           "phase 2 created a supplementary-magic-box (sm_QUERY)");
    expect(CountSubstring(*phase2, "[magic]") >= 1,
           "phase 2 created magic boxes (m_*)");
    expect(CountSubstring(*phase2, "^bf") >= 1,
           "phase 2 adorned the view bf (workdept bound)");
    expect(CountSubstring(*phase3, "[magic]") == 0,
           "phase 3 merged the magic boxes away (SD2' shape)");
    expect(CountSubstring(*phase3, "supplementary-magic") == 1,
           "phase 3 kept the shared supplementary box (one extra box)");
  }
  // Execute the final (phase-3) graph once so this bench also contributes
  // a work-counter sample to the regression harness.
  {
    BenchJson report("figure4", config.num_employees);
    ExecOptions exec_options;
    exec_options.tracer = obs.tracer();
    Executor executor(r->graph.get(), db.catalog(), exec_options);
    auto start = std::chrono::steady_clock::now();
    auto table = executor.Run();
    auto end = std::chrono::steady_clock::now();
    expect(table.ok(), "final transformed graph executes");
    if (table.ok()) {
      double ms =
          std::chrono::duration<double, std::milli>(end - start).count();
      report.Add({"queryD", "EMST", executor.stats().TotalWork(), ms,
                  table->num_rows()});
    }
  }

  std::printf("\n%s\n", failures == 0 ? "ALL CHECKS PASSED" : "CHECKS FAILED");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
