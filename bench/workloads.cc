#include "workloads.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace starmagic::bench {

BenchObs::BenchObs(std::string name) : name_(std::move(name)) {
  if (std::getenv("STARMAGIC_TRACE") != nullptr) tracer_.SetEnabled(true);
}

BenchObs::~BenchObs() {
  if (!tracer_.enabled()) return;
  std::string path = StrCat("TRACE_", name_, ".json");
  Status s = tracer_.WriteTraceEventJson(path);
  if (s.ok()) {
    std::printf("wrote %s (%zu spans, %zu events)\n", path.c_str(),
                tracer_.spans().size(), tracer_.events().size());
  } else {
    std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
  }
}

bool BenchObs::Smoke() {
  return std::getenv("STARMAGIC_BENCH_SMOKE") != nullptr;
}

uint64_t Rng::Next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t Rng::Uniform(int64_t n) {
  return n <= 0 ? 0 : static_cast<int64_t>(Next() % static_cast<uint64_t>(n));
}

int64_t Rng::Skewed(int64_t n, double exponent) {
  if (n <= 1) return 0;
  double u = static_cast<double>(Next() % (1ULL << 53)) / (1ULL << 53);
  double v = std::pow(u, exponent * 2.0);
  int64_t r = static_cast<int64_t>(v * static_cast<double>(n));
  return std::min(n - 1, std::max<int64_t>(0, r));
}

Status LoadEmpDept(Database* db, const EmpDeptConfig& config) {
  SM_RETURN_IF_ERROR(db->Execute(
      "CREATE TABLE department (deptno INTEGER, deptname VARCHAR, "
      "mgrno INTEGER, budget DOUBLE)"));
  SM_RETURN_IF_ERROR(db->Execute(
      "CREATE TABLE employee (empno INTEGER, empname VARCHAR, "
      "workdept INTEGER, salary DOUBLE, bonus DOUBLE)"));
  SM_RETURN_IF_ERROR(db->Execute(
      "CREATE TABLE project (projno INTEGER, projname VARCHAR, "
      "deptno INTEGER, budget DOUBLE)"));

  Rng rng(config.seed);
  Table* dept = db->catalog()->GetTable("department");
  for (int64_t d = 0; d < config.num_departments; ++d) {
    std::string name = d == 7 ? "Planning" : StrCat("Dept", d);
    // Managers are employees 0..num_departments-1 (one per department).
    SM_RETURN_IF_ERROR(dept->Append(
        {Value::Int(d), Value::String(name), Value::Int(d),
         Value::Double(50000.0 + static_cast<double>(rng.Uniform(1000000)))}));
  }
  Table* emp = db->catalog()->GetTable("employee");
  for (int64_t e = 0; e < config.num_employees; ++e) {
    // Employee e < num_departments manages department e.
    int64_t workdept = e < config.num_departments
                           ? e
                           : rng.Uniform(config.num_departments);
    SM_RETURN_IF_ERROR(emp->Append(
        {Value::Int(e), Value::String(StrCat("Emp", e)), Value::Int(workdept),
         Value::Double(20000.0 + static_cast<double>(rng.Uniform(100000))),
         Value::Double(static_cast<double>(rng.Uniform(5000)))}));
  }
  Table* proj = db->catalog()->GetTable("project");
  for (int64_t p = 0; p < config.num_projects; ++p) {
    SM_RETURN_IF_ERROR(proj->Append(
        {Value::Int(p), Value::String(StrCat("Proj", p)),
         Value::Int(rng.Uniform(config.num_departments)),
         Value::Double(1000.0 + static_cast<double>(rng.Uniform(500000)))}));
  }
  SM_RETURN_IF_ERROR(db->SetPrimaryKey("department", {"deptno"}));
  SM_RETURN_IF_ERROR(db->SetPrimaryKey("employee", {"empno"}));
  SM_RETURN_IF_ERROR(db->SetPrimaryKey("project", {"projno"}));
  return db->AnalyzeAll();
}

Status LoadProbe(Database* db, const std::string& name, int64_t rows,
                 int64_t distinct_depts, uint64_t seed) {
  SM_RETURN_IF_ERROR(db->Execute(
      StrCat("CREATE TABLE ", name, " (pdept INTEGER, tag INTEGER)")));
  Rng rng(seed);
  Table* probe = db->catalog()->GetTable(name);
  for (int64_t i = 0; i < rows; ++i) {
    SM_RETURN_IF_ERROR(probe->Append(
        {Value::Int(rng.Uniform(distinct_depts)), Value::Int(i)}));
  }
  return db->AnalyzeAll();
}

Status CreateBenchViews(Database* db) {
  SM_RETURN_IF_ERROR(db->Execute(
      "CREATE VIEW avgDeptSal (workdept, avgsalary) AS "
      "SELECT workdept, AVG(salary) FROM employee GROUP BY workdept"));
  SM_RETURN_IF_ERROR(db->Execute(
      "CREATE VIEW deptActivity (dept, people, spend) AS "
      "SELECT e.workdept, COUNT(*), SUM(p.budget) "
      "FROM employee e, project p WHERE e.workdept = p.deptno "
      "GROUP BY e.workdept"));
  SM_RETURN_IF_ERROR(db->Execute(
      "CREATE VIEW bigDeptActivity (dept, people, spend) AS "
      "SELECT dept, people, spend FROM deptActivity WHERE people > 0"));
  return CreatePaperViews(db);
}

Status LoadEdges(Database* db, int64_t num_nodes, double avg_degree,
                 uint64_t seed) {
  SM_RETURN_IF_ERROR(
      db->Execute("CREATE TABLE edge (src INTEGER, dst INTEGER)"));
  Rng rng(seed);
  Table* edge = db->catalog()->GetTable("edge");
  int64_t num_edges = static_cast<int64_t>(
      static_cast<double>(num_nodes) * avg_degree);
  for (int64_t i = 0; i < num_edges; ++i) {
    int64_t src = rng.Uniform(num_nodes);
    // Edges point "forward" so the graph is acyclic and paths terminate.
    int64_t span = std::max<int64_t>(1, num_nodes / 20);
    int64_t dst = std::min(num_nodes - 1, src + 1 + rng.Uniform(span));
    if (src == dst) continue;
    SM_RETURN_IF_ERROR(edge->Append({Value::Int(src), Value::Int(dst)}));
  }
  return db->AnalyzeAll();
}

Status CreatePaperViews(Database* db) {
  SM_RETURN_IF_ERROR(db->Execute(
      "CREATE VIEW mgrSal (empno, empname, workdept, salary) AS "
      "SELECT e.empno, e.empname, e.workdept, e.salary "
      "FROM employee e, department d WHERE e.empno = d.mgrno"));
  return db->Execute(
      "CREATE VIEW avgMgrSal (workdept, avgsalary) AS "
      "SELECT workdept, AVG(salary) FROM mgrSal GROUP BY workdept");
}

}  // namespace starmagic::bench
