// Reproduces Table 1 of the paper: elapsed time of eight experiments
// (A–H) under the three strategies, normalized so Original = 100.00.
//
// Paper reference values (Original / Correlated / EMST):
//   A: 100 /    0.40 /   0.47      E: 100 /   52.56 /   7.62
//   B: 100 /    2.12 /   0.28      F: 100 /    0.54 /   0.84
//   C: 100 /  513.27 /  50.24      G: 100 /    2.41 /   0.49
//   D: 100 / 5136.49 / 109.00      H: 100 /   19.91 /   4.46
//
// Absolute ratios depend on the substrate (we run an in-memory engine with
// hash indexes instead of DB2 on disk); the *shape* — who wins, and where
// correlation blows up — is the reproduced claim. Work counters (rows
// scanned/produced/probed) are printed as machine-independent evidence.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

struct Experiment {
  const char* id;
  const char* description;
  std::string sql;
  double paper_correlated;
  double paper_emst;
};

struct Measurement {
  double millis = 0;
  int64_t work = 0;
  bool emst_chosen = false;
  Table table;
};

// Times *execution* (as Table 1 does); optimization happens once outside
// the timed region.
Result<Measurement> Measure(Database* db, const std::string& sql,
                            ExecutionStrategy strategy, int repetitions,
                            Tracer* tracer) {
  Measurement best;
  QueryOptions options(strategy);
  options.tracer = tracer;
  SM_ASSIGN_OR_RETURN(PipelineResult pipeline, db->Explain(sql, options));
  best.emst_chosen = pipeline.emst_chosen;
  ExecOptions exec_options;
  exec_options.memoize_correlation = strategy != ExecutionStrategy::kCorrelated;
  exec_options.tracer = tracer;
  for (int i = 0; i < repetitions; ++i) {
    // A fresh executor per run: no result caches survive. Catalog
    // secondary indexes persist across runs, as in a real system, so the
    // timed region measures query execution, not index (re)builds.
    Executor executor(pipeline.graph.get(), db->catalog(), exec_options);
    auto start = std::chrono::steady_clock::now();
    SM_ASSIGN_OR_RETURN(Table table, executor.Run());
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1000.0;
    if (i == 0 || ms < best.millis) {
      best.millis = ms;
      best.work = executor.stats().TotalWork();
      best.table = std::move(table);
    }
  }
  return best;
}

int RunAll(int64_t scale) {
  BenchObs obs("table1");
  BenchJson report("table1", scale);
  EmpDeptConfig config;
  config.num_departments = 400 * scale / 100;
  config.num_employees = 20000 * scale / 100;
  config.num_projects = 4000 * scale / 100;

  Database db;
  auto check = [](const Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  check(LoadEmpDept(&db, config));
  check(LoadProbe(&db, "probe_b", 200 * scale / 100, 8, 101));
  check(LoadProbe(&db, "probe_c", 2000 * scale / 100, 40, 102));
  check(LoadProbe(&db, "probe_d", 8000 * scale / 100, 60, 103));
  check(LoadProbe(&db, "probe_e", 500 * scale / 100, 40, 105));
  check(LoadProbe(&db, "probe_f", 1, 4, 104));
  check(CreateBenchViews(&db));
  // Secondary indexes on the base-table join columns, as the paper's DB2
  // setup assumes: magic boxes drive point probes into these.
  check(db.Execute("CREATE INDEX emp_workdept ON employee (workdept)"));
  check(db.Execute("CREATE INDEX emp_empno ON employee (empno)"));
  check(db.Execute("CREATE INDEX dept_deptno ON department (deptno)"));
  check(db.Execute("CREATE INDEX dept_deptname ON department (deptname)"));
  check(db.Execute("CREATE INDEX dept_mgrno ON department (mgrno)"));
  check(db.Execute("CREATE INDEX proj_deptno ON project (deptno)"));
  check(db.AnalyzeAll());

  std::vector<Experiment> experiments = {
      {"A", "point-restricted aggregate view (one department)",
       "SELECT d.deptname, s.avgsalary FROM department d, avgDeptSal s "
       "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
       0.40, 0.47},
      {"B", "aggregate view probed by a small duplicated outer (200 rows)",
       "SELECT p.tag, s.avgsalary FROM probe_b p, avgDeptSal s "
       "WHERE p.pdept = s.workdept",
       2.12, 0.28},
      {"C", "join-fan-out view probed by a large duplicated outer (2000 rows)",
       "SELECT p.tag, a.spend FROM probe_c p, deptActivity a "
       "WHERE p.pdept = a.dept",
       513.27, 50.24},
      {"D", "nested view probed by a very large duplicated outer (8000 rows)",
       "SELECT p.tag, t.spend FROM probe_d p, bigDeptActivity t "
       "WHERE p.pdept = t.dept",
       5136.49, 109.00},
      {"E", "two aggregate views probed by a duplicated outer (500 rows)",
       "SELECT p.tag, s.avgsalary, a.spend "
       "FROM probe_e p, avgDeptSal s, deptActivity a "
       "WHERE p.pdept = s.workdept AND p.pdept = a.dept",
       52.56, 7.62},
      {"F", "single-row outer probing a cheap aggregate view",
       "SELECT p.tag, s.avgsalary FROM probe_f p, avgDeptSal s "
       "WHERE p.pdept = s.workdept",
       0.54, 0.84},
      {"G", "the paper's query D (avg salary of managers in 'Planning')",
       "SELECT d.deptname, s.workdept, s.avgsalary "
       "FROM department d, avgMgrSal s "
       "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
       2.41, 0.49},
      {"H", "range (non-equality) restriction pushed via condition magic",
       "SELECT d.deptname, a.spend FROM department d, deptActivity a "
       "WHERE a.dept <= d.deptno AND d.deptname = 'Planning'",
       19.91, 4.46},
  };

  std::printf(
      "Table 1: elapsed time, Original = 100.00 (scale=%lld%%)\n"
      "%-4s %-10s %10s %10s   %-22s %-22s  %s\n",
      static_cast<long long>(scale), "Exp", "", "Correlated", "EMST",
      "paper(Corr/EMST)", "work(O/C/E)", "emst-plan-chosen");
  bool all_equal = true;
  for (const Experiment& exp : experiments) {
    auto orig =
        Measure(&db, exp.sql, ExecutionStrategy::kOriginal, 3, obs.tracer());
    auto corr =
        Measure(&db, exp.sql, ExecutionStrategy::kCorrelated, 3, obs.tracer());
    auto emst =
        Measure(&db, exp.sql, ExecutionStrategy::kMagic, 3, obs.tracer());
    if (!orig.ok() || !corr.ok() || !emst.ok()) {
      std::fprintf(stderr, "Exp %s failed: %s %s %s\n", exp.id,
                   orig.status().ToString().c_str(),
                   corr.status().ToString().c_str(),
                   emst.status().ToString().c_str());
      return 1;
    }
    bool equal = Table::BagEquals(orig->table, corr->table) &&
                 Table::BagEquals(orig->table, emst->table);
    all_equal = all_equal && equal;
    report.Add({exp.id, "Original", orig->work, orig->millis,
                orig->table.num_rows()});
    report.Add({exp.id, "Correlated", corr->work, corr->millis,
                corr->table.num_rows()});
    report.Add({exp.id, "EMST", emst->work, emst->millis,
                emst->table.num_rows()});
    double base = orig->millis > 0 ? orig->millis : 1e-6;
    std::printf(
        "%-4s %10.2f %10.2f %10.2f   %8.2f / %-9.2f  %lld/%lld/%lld  %s%s\n",
        exp.id, 100.0, 100.0 * corr->millis / base,
        100.0 * emst->millis / base, exp.paper_correlated, exp.paper_emst,
        static_cast<long long>(orig->work), static_cast<long long>(corr->work),
        static_cast<long long>(emst->work),
        emst->emst_chosen ? "yes" : "NO",
        equal ? "" : "  RESULTS-DIVERGE!");
    std::printf("     -- %s [%lld result rows]\n", exp.description,
                static_cast<long long>(orig->table.num_rows()));
  }
  std::printf("result equality across strategies: %s\n",
              all_equal ? "OK" : "FAILED");
  // Result equality must hold at every scale — smoke mode does not forgive
  // it (unlike timing-ratio claims).
  return all_equal ? 0 : 1;
}

}  // namespace
}  // namespace starmagic::bench

int main(int argc, char** argv) {
  int64_t scale = starmagic::bench::BenchObs::Smoke() ? 2 : 100;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::atoll(arg.c_str() + 8);
  }
  return starmagic::bench::RunAll(scale);
}
