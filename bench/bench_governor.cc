// Resource-governor overhead: the same workloads with no governor attached
// ("governor=off") and with a governor carrying an unlimited budget
// ("governor=on" — every accounting site live, no limit ever trips). The
// claim under test is twofold:
//
//   1. Determinism — work counters and result rows are bit-identical with
//      and without the governor, at 1 thread and at 4. A governor that
//      changes what a query computes is a correctness bug; this fails at
//      every scale, smoke included.
//   2. Overhead — byte accounting plus cooperative check points cost less
//      than 2% wall time on the scan and join workloads (min over several
//      repetitions, so scheduler noise does not decide the gate). Forgiven
//      in smoke mode, where runs are too short to measure 2% of anything,
//      and skipped for thread counts above the hardware concurrency —
//      oversubscribed workers time-slice, and their wall time measures the
//      scheduler, not the accounting.
//
// STARMAGIC_THREADS=n replaces the 4-thread run with an n-thread run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/string_util.h"
#include "governor/governor.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

struct Measured {
  double ms = 0;
  int64_t work = 0;
  int64_t rows = 0;
  int64_t peak_bytes = 0;
};

/// One execution of `sql` at `threads` workers, optionally governed. The
/// governor (when on) carries an unlimited budget: accounting and check
/// points run, nothing aborts — the pure-overhead configuration.
Result<Measured> MeasureOnce(Database* db, const std::string& sql,
                             const QueryOptions& qopts, int threads,
                             bool governed, Tracer* tracer) {
  SM_ASSIGN_OR_RETURN(PipelineResult p, db->Explain(sql, qopts));
  ResourceGovernor governor(ResourceBudget::Unlimited());
  ExecOptions exec_options;
  exec_options.num_threads = threads;
  exec_options.tracer = tracer;
  if (governed) exec_options.governor = &governor;
  Executor executor(p.graph.get(), db->catalog(), exec_options);
  auto start = std::chrono::steady_clock::now();
  SM_ASSIGN_OR_RETURN(Table t, executor.Run());
  auto end = std::chrono::steady_clock::now();
  Measured m;
  m.ms = std::chrono::duration_cast<std::chrono::microseconds>(end - start)
             .count() /
         1000.0;
  m.work = executor.stats().TotalWork();
  m.rows = t.num_rows();
  m.peak_bytes = governor.peak_bytes();
  return m;
}

/// Min wall time over `reps` interleaved off/on pairs — alternating the
/// strategies inside one loop spreads machine-load drift over both sides
/// instead of charging it all to whichever was measured second. Work, rows
/// and peak come from the last run (deterministic, so any run's values are
/// THE values).
Status MeasurePair(Database* db, const std::string& sql,
                   const QueryOptions& qopts, int threads, int reps,
                   Tracer* tracer, Measured* base, Measured* governed) {
  for (int r = 0; r < reps; ++r) {
    for (bool on : {false, true}) {
      SM_ASSIGN_OR_RETURN(Measured m,
                          MeasureOnce(db, sql, qopts, threads, on, tracer));
      Measured* best = on ? governed : base;
      if (r == 0 || m.ms < best->ms) best->ms = m.ms;
      best->work = m.work;
      best->rows = m.rows;
      best->peak_bytes = m.peak_bytes;
    }
  }
  return Status::OK();
}

struct Workload {
  std::string name;
  std::string sql;
  QueryOptions options;
};

int Run() {
  BenchObs obs("governor");
  const bool smoke = BenchObs::Smoke();
  const int reps = smoke ? 5 : 7;

  // --- data (mirrors bench_parallel so overhead is measured on the same
  // shapes the parallel subsystem was gated on) ----------------------------
  const int64_t scan_rows = smoke ? 20'000 : 500'000;
  Database db;
  Status s = db.ExecuteScript("CREATE TABLE nums (v INTEGER, w INTEGER)");
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  {
    Rng rng(7);
    Table* nums = db.catalog()->GetTable("nums");
    for (int64_t i = 0; i < scan_rows; ++i) {
      nums->AppendUnchecked(
          Row{Value::Int(i), Value::Int(rng.Uniform(1'000'000))});
    }
  }
  EmpDeptConfig emp_config;
  if (smoke) {
    emp_config.num_departments = 200;
    emp_config.num_employees = 5'000;
    emp_config.num_projects = 500;
  }
  const int64_t probe_rows = smoke ? 10'000 : 200'000;
  if (Status st = LoadEmpDept(&db, emp_config); !st.ok() ||
      !(st = LoadProbe(&db, "probe", probe_rows,
                       emp_config.num_departments / 2, 99))
           .ok() ||
      !(st = db.Execute("ANALYZE")).ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  BenchJson report("governor", scan_rows);

  std::vector<Workload> workloads;
  workloads.push_back(
      {"scan_filter",
       "SELECT v FROM nums WHERE w > 500000 AND v + w > 600000",
       QueryOptions()});
  workloads.push_back(
      {"hash_join",
       "SELECT e.empno, p.tag FROM employee e, probe p "
       "WHERE e.workdept = p.pdept AND e.salary > 30000",
       QueryOptions()});

  int par_threads = 4;
  if (const char* env = std::getenv("STARMAGIC_THREADS");
      env != nullptr && std::atoi(env) > 1) {
    par_threads = std::atoi(env);
  }
  const std::vector<int> ladder = {1, par_threads};
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf(
      "Resource-governor overhead (unlimited budget, %d reps, %u hardware "
      "threads)\n\n",
      reps, hw);
  std::printf("%-12s %-8s %-14s %10s %12s %10s %10s\n", "workload",
              "threads", "strategy", "time(ms)", "work", "rows",
              "overhead");

  bool deterministic = true;
  bool overhead_ok = true;
  for (const Workload& w : workloads) {
    for (int threads : ladder) {
      Measured base, governed;
      if (Status st = MeasurePair(&db, w.sql, w.options, threads, reps,
                                  obs.tracer(), &base, &governed);
          !st.ok()) {
        std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      if (governed.work != base.work || governed.rows != base.rows) {
        std::fprintf(stderr,
                     "FAIL %s at %d threads: governed work %lld vs %lld, "
                     "rows %lld vs %lld\n",
                     w.name.c_str(), threads,
                     static_cast<long long>(governed.work),
                     static_cast<long long>(base.work),
                     static_cast<long long>(governed.rows),
                     static_cast<long long>(base.rows));
        deterministic = false;
      }
      double overhead = base.ms > 0 ? (governed.ms - base.ms) / base.ms : 0;
      // Oversubscribed runs (threads > cores) time-slice; their wall time
      // is scheduler noise, so they stay informational.
      const bool gated = threads == 1 || hw >= static_cast<unsigned>(threads);
      if (gated && overhead > 0.02) overhead_ok = false;
      // Per-thread-count workload names so bench_report.py pairs the
      // off/on strategies within each cell.
      std::string cell = StrCat(w.name, "_t", threads);
      for (bool on : {false, true}) {
        const Measured& m = on ? governed : base;
        std::printf("%-14s %-8d %-14s %10.2f %12lld %10lld %8.2f%%%s\n",
                    cell.c_str(), threads, on ? "governor=on" : "governor=off",
                    m.ms, static_cast<long long>(m.work),
                    static_cast<long long>(m.rows),
                    on ? overhead * 100 : 0.0,
                    on && !gated ? " (ungated: oversubscribed)" : "");
        BenchSample sample;
        sample.workload = cell;
        sample.strategy = on ? "governor=on" : "governor=off";
        sample.total_work = m.work;
        sample.wall_ms = m.ms;
        sample.rows = m.rows;
        report.Add(std::move(sample));
      }
    }
    std::printf("\n");
  }

  if (!deterministic) return 1;
  if (Status st = report.Write(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("claim: governor accounting overhead < 2%%: %s%s\n",
              overhead_ok ? "PASS" : "FAIL",
              smoke ? " (informational in smoke)" : "");
  return obs.Verdict(overhead_ok);
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
