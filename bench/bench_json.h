#ifndef STARMAGIC_BENCH_BENCH_JSON_H_
#define STARMAGIC_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace starmagic::bench {

/// One measured (workload, strategy) cell of a bench run. `total_work` is
/// the deterministic ExecStats::TotalWork counter — the value the
/// regression harness diffs; `wall_ms` is informational (machine-noisy).
struct BenchSample {
  std::string workload;  ///< e.g. "A", "queryD", "bound_source"
  std::string strategy;  ///< e.g. "Original", "Correlated", "EMST"
  int64_t total_work = 0;
  double wall_ms = 0;
  int64_t rows = 0;  ///< rows the measured query produced
};

/// Collects BenchSamples and writes the unified BENCH_<name>.json schema
/// shared by every bench binary (validated and diffed by
/// scripts/bench_report.py):
///
///   {"schema_version": 1, "bench": "<name>", "scale": N, "smoke": bool,
///    "samples": [{"workload": ..., "strategy": ..., "total_work": N,
///                 "wall_ms": X, "rows": N}, ...]}
///
/// Construct it first thing in main (mirroring BenchObs), Add() each
/// measurement, and either call Write() explicitly or let the destructor
/// flush; Write() is idempotent and the destructor skips an already
/// written (or empty) report.
class BenchJson {
 public:
  /// `scale` is the bench's primary size knob at the scale actually run
  /// (after any smoke shrink), so diffs across different scales are
  /// rejected rather than reported as regressions.
  BenchJson(std::string bench, int64_t scale);
  ~BenchJson();

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void Add(BenchSample sample) { samples_.push_back(std::move(sample)); }

  /// Overrides the scale recorded at construction (for benches that only
  /// know their final scale after parsing flags).
  void set_scale(int64_t scale) { scale_ = scale; }

  /// Writes BENCH_<bench>.json into the cwd. Idempotent.
  Status Write();

  /// The serialized report (exposed for tests).
  std::string ToJson() const;

 private:
  std::string bench_;
  int64_t scale_;
  bool written_ = false;
  std::vector<BenchSample> samples_;
};

}  // namespace starmagic::bench

#endif  // STARMAGIC_BENCH_BENCH_JSON_H_
