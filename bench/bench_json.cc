#include "bench_json.h"

#include <cstdio>

#include "common/string_util.h"
#include "obs/trace.h"
#include "workloads.h"

namespace starmagic::bench {

BenchJson::BenchJson(std::string bench, int64_t scale)
    : bench_(std::move(bench)), scale_(scale) {}

BenchJson::~BenchJson() {
  if (samples_.empty()) return;
  Status s = Write();
  if (!s.ok()) std::fprintf(stderr, "bench json: %s\n", s.ToString().c_str());
}

std::string BenchJson::ToJson() const {
  std::string out = StrCat("{\"schema_version\": 1, \"bench\": \"",
                           JsonEscape(bench_), "\", \"scale\": ", scale_,
                           ", \"smoke\": ", BenchObs::Smoke() ? "true" : "false",
                           ", \"samples\": [");
  for (size_t i = 0; i < samples_.size(); ++i) {
    const BenchSample& s = samples_[i];
    if (i > 0) out += ", ";
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", s.wall_ms);
    out += StrCat("{\"workload\": \"", JsonEscape(s.workload),
                  "\", \"strategy\": \"", JsonEscape(s.strategy),
                  "\", \"total_work\": ", s.total_work, ", \"wall_ms\": ", wall,
                  ", \"rows\": ", s.rows, "}");
  }
  out += "]}\n";
  return out;
}

Status BenchJson::Write() {
  if (written_) return Status::OK();
  std::string path = StrCat("BENCH_", bench_, ".json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::ExecutionError(
        StrCat("cannot open '", path, "' for write"));
  }
  std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("bench report written to %s (%zu samples)\n", path.c_str(),
              samples_.size());
  written_ = true;
  return Status::OK();
}

}  // namespace starmagic::bench
