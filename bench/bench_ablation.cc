// Ablations of the EMST design choices the paper calls out:
//
//   1. supplementary-magic-boxes (§4.1): sharing the join prefix between
//      the query and the magic computation vs. recomputing it,
//   2. condition pushdown / ground magic conditions (§4.1, [MFPR90b]):
//      pushing non-equality restrictions as aggregate bounds,
//   3. distinct pullup (Example 4.1): the duplicate-freeness inference
//      that lets phase 3 merge magic boxes away,
//   4. the sips-friendly join-order candidate (§2/§3.2: "the choice of the
//      join order is very important for an efficient transformation").
//
// Each section runs a query with the knob on and off and reports work and
// graph complexity.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "qgm/printer.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

struct RunResult {
  int64_t work = 0;
  int boxes = 0;
  bool emst_chosen = false;
  double ms = 0;
  int64_t rows = 0;
};

Result<RunResult> RunWith(Database* db, const std::string& sql,
                          const PipelineOptions& pipeline_options,
                          Tracer* tracer) {
  QueryOptions options(ExecutionStrategy::kMagic);
  options.pipeline = pipeline_options;
  options.tracer = tracer;
  ExecOptions exec_options;
  exec_options.tracer = tracer;
  SM_ASSIGN_OR_RETURN(PipelineResult p, db->Explain(sql, options));
  Executor executor(p.graph.get(), db->catalog(), exec_options);
  auto start = std::chrono::steady_clock::now();
  SM_ASSIGN_OR_RETURN(Table t, executor.Run());
  auto end = std::chrono::steady_clock::now();
  RunResult r;
  r.work = executor.stats().TotalWork();
  r.boxes = p.graph->NumBoxes();
  r.emst_chosen = p.emst_chosen;
  r.ms = std::chrono::duration<double, std::milli>(end - start).count();
  r.rows = t.num_rows();
  return r;
}

void PrintRow(BenchJson* report, const char* workload, const char* label,
              const Result<RunResult>& on, const Result<RunResult>& off) {
  if (!on.ok() || !off.ok()) {
    std::printf("%-34s FAILED: %s / %s\n", label,
                on.status().ToString().c_str(),
                off.status().ToString().c_str());
    return;
  }
  report->Add({workload, "on", on->work, on->ms, on->rows});
  report->Add({workload, "off", off->work, off->ms, off->rows});
  std::printf("%-34s  on: work=%-9lld boxes=%-3d   off: work=%-9lld boxes=%-3d"
              "  (off/on work = %.2fx)\n",
              label, static_cast<long long>(on->work), on->boxes,
              static_cast<long long>(off->work), off->boxes,
              on->work > 0 ? static_cast<double>(off->work) / on->work : 0.0);
}

int Run() {
  BenchObs obs("ablation");
  Database db;
  EmpDeptConfig config;
  config.num_departments = 200;
  config.num_employees = BenchObs::Smoke() ? 500 : 10000;
  config.num_projects = BenchObs::Smoke() ? 100 : 2000;
  if (Status s = LoadEmpDept(&db, config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = LoadProbe(&db, "probe", BenchObs::Smoke() ? 100 : 1000, 25, 9);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = CreateBenchViews(&db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  PipelineOptions defaults;
  defaults.cost_compare = false;  // show the raw effect of each knob

  BenchJson report("ablation", config.num_employees);
  std::printf("EMST design-choice ablations (magic strategy forced)\n\n");

  {
    // Supplementary magic: the query's prefix is a department x project
    // join; without supplementary boxes the magic computation re-derives
    // that join instead of sharing it.
    const char* sql =
        "SELECT d.deptname, p.projname, s.avgsalary "
        "FROM department d, project p, avgDeptSal s "
        "WHERE d.deptno = p.deptno AND p.budget < 50000 "
        "AND d.deptno = s.workdept";
    PipelineOptions off = defaults;
    off.emst.use_supplementary = false;
    PrintRow(&report, "supplementary", "supplementary-magic-boxes",
             RunWith(&db, sql, defaults, obs.tracer()),
             RunWith(&db, sql, off, obs.tracer()));
  }
  {
    // Condition magic: the Exp H query with a range join restriction.
    const char* sql =
        "SELECT d.deptname, a.spend FROM department d, deptActivity a "
        "WHERE a.dept <= d.deptno AND d.deptname = 'Planning'";
    PipelineOptions off = defaults;
    off.emst.push_conditions = false;
    PrintRow(&report, "condition_magic", "condition magic (c adornments)",
             RunWith(&db, sql, defaults, obs.tracer()),
             RunWith(&db, sql, off, obs.tracer()));
  }
  {
    // Distinct pullup: without it the magic boxes keep their DISTINCT and
    // cannot be merged in phase 3 (more boxes survive).
    const char* sql =
        "SELECT d.deptname, s.workdept, s.avgsalary "
        "FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'";
    PipelineOptions off = defaults;
    off.toggles.distinct_pullup = false;
    PrintRow(&report, "distinct_pullup", "distinct pullup (phase-3 merges)",
             RunWith(&db, sql, defaults, obs.tracer()),
             RunWith(&db, sql, off, obs.tracer()));
  }
  {
    // Join-order sensitivity: without the sips-friendly candidate the
    // optimizer's view-first order gives EMST nothing to bind.
    const char* sql =
        "SELECT p.tag, a.spend FROM probe p, deptActivity a "
        "WHERE p.pdept = a.dept";
    PipelineOptions off = defaults;
    off.try_sips_order = false;
    PrintRow(&report, "sips_order", "sips-friendly join order",
             RunWith(&db, sql, defaults, obs.tracer()),
             RunWith(&db, sql, off, obs.tracer()));
  }
  return 0;
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
