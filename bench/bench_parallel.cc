// Morsel-driven parallel execution: the same workloads at 1/2/4/8 worker
// threads. The claim under test is twofold:
//
//   1. Determinism — result rows and every deterministic work counter
//      (ExecStats / TotalWork) are bit-identical at every thread count.
//      This is a hard failure at any scale, smoke included.
//   2. Speedup — wall time at 4 threads is >= 2x the sequential run on the
//      scan and join workloads. Only wall time may vary with the thread
//      count; the gate is forgiven in smoke mode and on machines with
//      fewer than 4 hardware threads (a 1-core container cannot exhibit
//      parallel speedup no matter how good the subsystem is).
//
// STARMAGIC_THREADS=n overrides the thread ladder to {1, n}.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/string_util.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

struct Measured {
  double ms = 0;
  int64_t work = 0;
  int64_t rows = 0;
  ParallelStats parallel;
};

Result<Measured> MeasureAtThreads(Database* db, const std::string& sql,
                                  const QueryOptions& qopts, int threads,
                                  Tracer* tracer) {
  SM_ASSIGN_OR_RETURN(PipelineResult p, db->Explain(sql, qopts));
  ExecOptions exec_options;
  exec_options.tracer = tracer;
  exec_options.num_threads = threads;
  Executor executor(p.graph.get(), db->catalog(), exec_options);
  auto start = std::chrono::steady_clock::now();
  SM_ASSIGN_OR_RETURN(Table t, executor.Run());
  auto end = std::chrono::steady_clock::now();
  Measured m;
  m.ms = std::chrono::duration_cast<std::chrono::microseconds>(end - start)
             .count() /
         1000.0;
  m.work = executor.stats().TotalWork();
  m.rows = t.num_rows();
  m.parallel = executor.parallel_stats();
  return m;
}

std::vector<int> ThreadLadder() {
  if (const char* env = std::getenv("STARMAGIC_THREADS");
      env != nullptr && std::atoi(env) > 1) {
    return {1, std::atoi(env)};
  }
  if (BenchObs::Smoke()) return {1, 2, 4};
  return {1, 2, 4, 8};
}

struct Workload {
  std::string name;
  std::string sql;
  QueryOptions options;
  bool gate_speedup = false;  ///< subject to the 4-thread >= 2x claim
};

int Run() {
  BenchObs obs("parallel");
  const bool smoke = BenchObs::Smoke();

  // --- data ---------------------------------------------------------------
  const int64_t scan_rows = smoke ? 20'000 : 500'000;
  Database db;
  Status s = db.ExecuteScript("CREATE TABLE nums (v INTEGER, w INTEGER)");
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  {
    Rng rng(7);
    Table* nums = db.catalog()->GetTable("nums");
    for (int64_t i = 0; i < scan_rows; ++i) {
      nums->AppendUnchecked(
          Row{Value::Int(i), Value::Int(rng.Uniform(1'000'000))});
    }
  }
  EmpDeptConfig emp_config;
  if (smoke) {
    emp_config.num_departments = 200;
    emp_config.num_employees = 5'000;
    emp_config.num_projects = 500;
  }
  const int64_t probe_rows = smoke ? 10'000 : 200'000;
  if (Status st = LoadEmpDept(&db, emp_config); !st.ok() ||
      !(st = LoadProbe(&db, "probe", probe_rows,
                       emp_config.num_departments / 2, 99))
           .ok() ||
      !(st = LoadEdges(&db, smoke ? 60 : 300, 2.5, 2024)).ok() ||
      !(st = db.Execute(
                 "CREATE RECURSIVE VIEW tc (src, dst) AS "
                 "SELECT src, dst FROM edge UNION "
                 "SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src"))
           .ok() ||
      !(st = db.Execute("ANALYZE")).ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  BenchJson report("parallel", scan_rows);

  std::vector<Workload> workloads;
  workloads.push_back({"scan_filter",
                       "SELECT v FROM nums WHERE w > 500000 AND v + w > 600000",
                       QueryOptions(), /*gate_speedup=*/true});
  workloads.push_back(
      {"hash_join",
       "SELECT e.empno, p.tag FROM employee e, probe p "
       "WHERE e.workdept = p.pdept AND e.salary > 30000",
       QueryOptions(), /*gate_speedup=*/true});
  {
    // Parallel joins inside every fixpoint round; the iteration barrier
    // keeps round structure (and iteration counts) identical.
    QueryOptions recursive_options(ExecutionStrategy::kOriginal);
    workloads.push_back({"recursive", "SELECT src, dst FROM tc",
                         recursive_options, /*gate_speedup=*/false});
  }

  const std::vector<int> ladder = ThreadLadder();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Morsel-driven parallel execution (%u hardware threads)\n\n",
              hw);
  std::printf("%-12s %-10s %10s %12s %10s %8s %8s\n", "workload", "threads",
              "time(ms)", "work", "rows", "morsels", "speedup");

  bool deterministic = true;
  bool speedup_ok = true;
  bool speedup_gated = false;
  for (const Workload& w : workloads) {
    double baseline_ms = 0;
    int64_t baseline_work = 0;
    int64_t baseline_rows = 0;
    for (int threads : ladder) {
      auto m = MeasureAtThreads(&db, w.sql, w.options, threads, obs.tracer());
      if (!m.ok()) {
        std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                     m.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) {
        baseline_ms = m->ms;
        baseline_work = m->work;
        baseline_rows = m->rows;
      } else if (m->work != baseline_work || m->rows != baseline_rows) {
        // Work counters shifting with the thread count is a correctness
        // bug, never noise — fail at every scale.
        std::fprintf(stderr,
                     "FAIL %s at %d threads: work %lld vs %lld, rows %lld "
                     "vs %lld (sequential)\n",
                     w.name.c_str(), threads,
                     static_cast<long long>(m->work),
                     static_cast<long long>(baseline_work),
                     static_cast<long long>(m->rows),
                     static_cast<long long>(baseline_rows));
        deterministic = false;
      }
      double speedup = threads == 1 ? 1.0 : baseline_ms / m->ms;
      std::printf("%-12s %-10d %10.2f %12lld %10lld %8lld %7.2fx\n",
                  w.name.c_str(), threads, m->ms,
                  static_cast<long long>(m->work),
                  static_cast<long long>(m->rows),
                  static_cast<long long>(m->parallel.morsels), speedup);
      if (w.gate_speedup && threads == 4) {
        speedup_gated = true;
        if (speedup < 2.0) speedup_ok = false;
      }
      BenchSample sample;
      sample.workload = w.name;
      sample.strategy = StrCat("threads=", threads);
      sample.total_work = m->work;
      sample.wall_ms = m->ms;
      sample.rows = m->rows;
      report.Add(std::move(sample));
    }
    std::printf("\n");
  }

  if (!deterministic) return 1;
  if (Status st = report.Write(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (!speedup_gated) {
    std::printf("claim: speedup gate not exercised (no 4-thread run)\n");
    return 0;
  }
  if (hw < 4) {
    // One visible core: workers time-slice, wall time cannot drop. The
    // determinism half of the claim (checked above) is unaffected.
    std::printf(
        "claim: >=2x @ 4 threads SKIPPED (%u hardware threads; need 4)\n",
        hw);
    return 0;
  }
  std::printf("claim: >=2x speedup at 4 threads on scan/join: %s\n",
              speedup_ok ? "PASS" : "FAIL");
  return obs.Verdict(speedup_ok);
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
