// System-table cost: what does the sys.* introspection schema cost the
// queries that use it, and — more importantly — the queries that don't?
//
//   1. Snapshot cost — scanning a sys.* table materializes its rows from
//      live engine state at scan start. Measured against a base-table scan
//      of the exact same row count and shape (informational: snapshots are
//      small by construction, but the ratio belongs in the record).
//   2. Registry overhead — a database with the registry attached but never
//      queried must run the PR-3 smoke workloads at parity with one where
//      it is detached entirely. The gate: registry-attached wall time
//      within 1% of detached (min over interleaved reps; forgiven in smoke
//      mode, where runs are too short to measure 1% of anything, and
//      skipped above hardware concurrency — oversubscribed workers measure
//      the scheduler, not the registry).
//   3. Progress overhead — same discipline for live query-progress
//      tracking (sys.active_queries): a tracker that is attached but
//      never scraped must cost < 1% wall time against tracking disabled,
//      with identical work and rows. The per-morsel updates are relaxed
//      atomics riding the governor checkpoint sites, so this gate pins
//      that piggyback down.
//
// Determinism is gated at every scale, smoke included: work counters and
// rows must be bit-identical with the registry attached and detached.
//
// STARMAGIC_THREADS=n replaces the 4-thread run with an n-thread run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/string_util.h"
#include "sys/system_tables.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

struct Measured {
  double ms = 0;
  int64_t work = 0;
  int64_t rows = 0;
};

/// One full Query() execution (parse → optimize → snapshot → execute), the
/// path a sys scan actually takes.
Result<Measured> MeasureOnce(Database* db, const std::string& sql,
                             int threads) {
  QueryOptions options;
  options.num_threads = threads;
  auto start = std::chrono::steady_clock::now();
  SM_ASSIGN_OR_RETURN(QueryResult r, db->Query(sql, options));
  auto end = std::chrono::steady_clock::now();
  Measured m;
  m.ms = std::chrono::duration_cast<std::chrono::microseconds>(end - start)
             .count() /
         1000.0;
  m.work = r.exec_stats.TotalWork();
  m.rows = r.table.num_rows();
  return m;
}

/// Min wall time over `reps` interleaved off/on pairs: `off` runs with the
/// system registry detached, `on` with it attached. Interleaving spreads
/// machine-load drift over both sides. Work and rows come from the last
/// run of each side (deterministic, so any run's values are THE values).
Status MeasurePair(Database* db, const std::string& sql, int threads,
                   int reps, Measured* off, Measured* on) {
  const SystemTableRegistry* registry = db->system_tables();
  for (int r = 0; r < reps; ++r) {
    for (bool attached : {false, true}) {
      db->catalog()->AttachSystemRegistry(attached ? registry : nullptr);
      Result<Measured> m = MeasureOnce(db, sql, threads);
      db->catalog()->AttachSystemRegistry(registry);
      SM_RETURN_IF_ERROR(m.status());
      Measured* best = attached ? on : off;
      if (r == 0 || m->ms < best->ms) best->ms = m->ms;
      best->work = m->work;
      best->rows = m->rows;
    }
  }
  return Status::OK();
}

int Run() {
  BenchObs obs("systables");
  const bool smoke = BenchObs::Smoke();
  const int reps = smoke ? 5 : 7;

  // --- data: the PR-3 shapes (scan + join), plus a widened catalog so the
  // sys.columns snapshot has enough rows to time. -------------------------
  const int64_t scan_rows = smoke ? 20'000 : 500'000;
  Database db;
  Status s = db.ExecuteScript("CREATE TABLE nums (v INTEGER, w INTEGER)");
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  {
    Rng rng(7);
    Table* nums = db.catalog()->GetTable("nums");
    for (int64_t i = 0; i < scan_rows; ++i) {
      nums->AppendUnchecked(
          Row{Value::Int(i), Value::Int(rng.Uniform(1'000'000))});
    }
  }
  EmpDeptConfig emp_config;
  if (smoke) {
    emp_config.num_departments = 200;
    emp_config.num_employees = 5'000;
    emp_config.num_projects = 500;
  }
  const int64_t probe_rows = smoke ? 10'000 : 200'000;
  const int extra_tables = smoke ? 20 : 100;
  if (Status st = LoadEmpDept(&db, emp_config); !st.ok() ||
      !(st = LoadProbe(&db, "probe", probe_rows,
                       emp_config.num_departments / 2, 99))
           .ok() ||
      !(st = db.Execute("ANALYZE")).ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  // Widen the catalog: each table adds 8 sys.columns rows.
  for (int i = 0; i < extra_tables; ++i) {
    if (Status st = db.Execute(StrCat(
            "CREATE TABLE wide_", i,
            " (c0 INTEGER, c1 INTEGER, c2 VARCHAR, c3 DOUBLE, c4 INTEGER, "
            "c5 VARCHAR, c6 DOUBLE, c7 INTEGER)"));
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  BenchJson report("systables", scan_rows);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("System-table cost (%d reps, %u hardware threads)\n\n", reps,
              hw);

  // --- 1. snapshot scan vs equal-row base-table scan ----------------------
  // Mirror sys.columns into a stored table of identical shape and row
  // count, then time full scans of both.
  {
    // Create the mirror table BEFORE snapshotting sys.columns, so the
    // snapshot covers the mirror's own columns and the row counts match.
    if (Status st = db.Execute(
            "CREATE TABLE stored_columns (table_name VARCHAR, "
            "ordinal INTEGER, name VARCHAR, type VARCHAR)");
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    QueryOptions internal;
    internal.internal = true;
    auto cols = db.Query("SELECT * FROM sys.columns", internal);
    if (!cols.ok()) {
      std::fprintf(stderr, "%s\n", cols.status().ToString().c_str());
      return 1;
    }
    Table* stored = db.catalog()->GetTable("stored_columns");
    for (const Row& row : cols->table.rows()) stored->AppendUnchecked(row);

    Measured snap, base;
    for (int r = 0; r < reps; ++r) {
      for (bool sys_side : {false, true}) {
        Result<Measured> m = MeasureOnce(
            &db,
            sys_side ? "SELECT * FROM sys.columns"
                     : "SELECT * FROM stored_columns",
            1);
        if (!m.ok()) {
          std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
          return 1;
        }
        Measured* best = sys_side ? &snap : &base;
        if (r == 0 || m->ms < best->ms) best->ms = m->ms;
        best->work = m->work;
        best->rows = m->rows;
      }
    }
    std::printf("%-16s %-14s %10s %12s %10s\n", "workload", "strategy",
                "time(ms)", "work", "rows");
    for (bool sys_side : {false, true}) {
      const Measured& m = sys_side ? snap : base;
      std::printf("%-16s %-14s %10.3f %12lld %10lld\n", "snapshot_scan",
                  sys_side ? "sys=snapshot" : "sys=base", m.ms,
                  static_cast<long long>(m.work),
                  static_cast<long long>(m.rows));
      BenchSample sample;
      sample.workload = "snapshot_scan";
      sample.strategy = sys_side ? "sys=snapshot" : "sys=base";
      sample.total_work = m.work;
      sample.wall_ms = m.ms;
      sample.rows = m.rows;
      report.Add(std::move(sample));
    }
    if (snap.rows != base.rows) {
      std::fprintf(stderr, "FAIL snapshot_scan: %lld snapshot rows vs %lld "
                           "stored rows\n",
                   static_cast<long long>(snap.rows),
                   static_cast<long long>(base.rows));
      return 1;
    }
    std::printf("snapshot materialization cost: %.2fx the equal-row base "
                "scan (informational)\n\n",
                base.ms > 0 ? snap.ms / base.ms : 0);
  }

  // --- 2. registry-attached-but-unqueried overhead (<1% gate) -------------
  struct Workload {
    std::string name;
    std::string sql;
  };
  std::vector<Workload> workloads = {
      {"scan_filter", "SELECT v FROM nums WHERE w > 500000 AND v + w > 600000"},
      {"hash_join",
       "SELECT e.empno, p.tag FROM employee e, probe p "
       "WHERE e.workdept = p.pdept AND e.salary > 30000"},
  };
  int par_threads = 4;
  if (const char* env = std::getenv("STARMAGIC_THREADS");
      env != nullptr && std::atoi(env) > 1) {
    par_threads = std::atoi(env);
  }
  const std::vector<int> ladder = {1, par_threads};

  std::printf("%-16s %-8s %-14s %10s %12s %10s %10s\n", "workload", "threads",
              "strategy", "time(ms)", "work", "rows", "overhead");
  bool deterministic = true;
  bool overhead_ok = true;
  for (const Workload& w : workloads) {
    for (int threads : ladder) {
      Measured off, on;
      if (Status st = MeasurePair(&db, w.sql, threads, reps, &off, &on);
          !st.ok()) {
        std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      if (on.work != off.work || on.rows != off.rows) {
        std::fprintf(stderr,
                     "FAIL %s at %d threads: attached work %lld vs %lld, "
                     "rows %lld vs %lld\n",
                     w.name.c_str(), threads, static_cast<long long>(on.work),
                     static_cast<long long>(off.work),
                     static_cast<long long>(on.rows),
                     static_cast<long long>(off.rows));
        deterministic = false;
      }
      double overhead = off.ms > 0 ? (on.ms - off.ms) / off.ms : 0;
      const bool gated = threads == 1 || hw >= static_cast<unsigned>(threads);
      if (gated && overhead > 0.01) overhead_ok = false;
      // Per-thread-count workload names so bench_report.py pairs the
      // off/on strategies within each cell.
      std::string cell = StrCat(w.name, "_t", threads);
      for (bool attached : {false, true}) {
        const Measured& m = attached ? on : off;
        std::printf("%-16s %-8d %-14s %10.2f %12lld %10lld %8.2f%%%s\n",
                    cell.c_str(), threads,
                    attached ? "registry=on" : "registry=off", m.ms,
                    static_cast<long long>(m.work),
                    static_cast<long long>(m.rows),
                    attached ? overhead * 100 : 0.0,
                    attached && !gated ? " (ungated: oversubscribed)" : "");
        BenchSample sample;
        sample.workload = cell;
        sample.strategy = attached ? "registry=on" : "registry=off";
        sample.total_work = m.work;
        sample.wall_ms = m.ms;
        sample.rows = m.rows;
        report.Add(std::move(sample));
      }
    }
    std::printf("\n");
  }

  // --- 3. progress-tracking-attached-but-unscraped overhead (<1% gate) ----
  std::printf("%-16s %-8s %-14s %10s %12s %10s %10s\n", "workload", "threads",
              "strategy", "time(ms)", "work", "rows", "overhead");
  for (const Workload& w : workloads) {
    for (int threads : ladder) {
      Measured off, on;
      Status st = Status::OK();
      for (int r = 0; r < reps && st.ok(); ++r) {
        for (bool tracked : {false, true}) {
          db.EnableProgressTracking(tracked);
          Result<Measured> m = MeasureOnce(&db, w.sql, threads);
          db.EnableProgressTracking(true);
          if (!m.ok()) {
            st = m.status();
            break;
          }
          Measured* best = tracked ? &on : &off;
          if (r == 0 || m->ms < best->ms) best->ms = m->ms;
          best->work = m->work;
          best->rows = m->rows;
        }
      }
      if (!st.ok()) {
        std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      if (on.work != off.work || on.rows != off.rows) {
        std::fprintf(stderr,
                     "FAIL %s at %d threads: tracked work %lld vs %lld, "
                     "rows %lld vs %lld\n",
                     w.name.c_str(), threads, static_cast<long long>(on.work),
                     static_cast<long long>(off.work),
                     static_cast<long long>(on.rows),
                     static_cast<long long>(off.rows));
        deterministic = false;
      }
      double overhead = off.ms > 0 ? (on.ms - off.ms) / off.ms : 0;
      const bool gated = threads == 1 || hw >= static_cast<unsigned>(threads);
      if (gated && overhead > 0.01) overhead_ok = false;
      std::string cell = StrCat(w.name, "_t", threads);
      for (bool tracked : {false, true}) {
        const Measured& m = tracked ? on : off;
        std::printf("%-16s %-8d %-14s %10.2f %12lld %10lld %8.2f%%%s\n",
                    cell.c_str(), threads,
                    tracked ? "progress=on" : "progress=off", m.ms,
                    static_cast<long long>(m.work),
                    static_cast<long long>(m.rows),
                    tracked ? overhead * 100 : 0.0,
                    tracked && !gated ? " (ungated: oversubscribed)" : "");
        BenchSample sample;
        sample.workload = cell;
        sample.strategy = tracked ? "progress=on" : "progress=off";
        sample.total_work = m.work;
        sample.wall_ms = m.ms;
        sample.rows = m.rows;
        report.Add(std::move(sample));
      }
    }
    std::printf("\n");
  }

  if (!deterministic) return 1;
  if (Status st = report.Write(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("claim: unqueried registry + unscraped progress overhead "
              "< 1%%: %s%s\n",
              overhead_ok ? "PASS" : "FAIL",
              smoke ? " (informational in smoke)" : "");
  return obs.Verdict(overhead_ok);
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
