// Reproduces the claim of Figure 1 / Example 1.1: the magic transformation
// makes the query graph *more complex* (more boxes, more joins) and yet
// the transformed query executes orders of magnitude faster (the paper
// reports two and a half orders of magnitude for Experiment G).
//
// We report, for the paper's query D:
//   * box/quantifier counts of the executed graph per strategy,
//   * execution wall time and deterministic work counters,
//   * the Original/EMST ratio.

#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "qgm/printer.h"
#include "workloads.h"

namespace starmagic::bench {
namespace {

int Run() {
  BenchObs obs("figure1");
  Database db;
  EmpDeptConfig config;  // defaults: 2000 departments, 50000 employees
  BenchJson report("figure1", BenchObs::Smoke() ? 500 : 50000);
  if (BenchObs::Smoke()) {
    config.num_departments = 50;
    config.num_employees = 500;
    config.num_projects = 100;
  }
  if (Status s = LoadEmpDept(&db, config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = CreatePaperViews(&db); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  // Index every access path the paper's DB2 setup assumes — including
  // deptname, so the bound restriction enters through a point probe. The
  // magic plan turns all of its accesses into such probes; the original
  // plan still has to materialize the whole view.
  for (const char* ddl :
       {"CREATE INDEX emp_workdept ON employee (workdept)",
        "CREATE INDEX emp_empno ON employee (empno)",
        "CREATE INDEX dept_deptno ON department (deptno)",
        "CREATE INDEX dept_deptname ON department (deptname)",
        "CREATE INDEX dept_mgrno ON department (mgrno)"}) {
    if (Status s = db.Execute(ddl); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  const char* query_d =
      "SELECT d.deptname, s.workdept, s.avgsalary "
      "FROM department d, avgMgrSal s "
      "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'";

  std::printf("Figure 1: query D, %lld employees / %lld departments\n\n",
              static_cast<long long>(config.num_employees),
              static_cast<long long>(config.num_departments));
  std::printf("%-11s %8s %12s %12s %10s %s\n", "strategy", "boxes",
              "time(ms)", "work", "rows", "graph-complexity");

  double original_ms = 0;
  double emst_ms = 0;
  int64_t original_work = 0;
  int64_t emst_work = 0;
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kOriginal, ExecutionStrategy::kCorrelated,
        ExecutionStrategy::kMagic}) {
    QueryOptions qopts(strategy);
    qopts.tracer = obs.tracer();
    auto pipeline = db.Explain(query_d, qopts);
    if (!pipeline.ok()) {
      std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
      return 1;
    }
    ExecOptions exec_options;
    exec_options.memoize_correlation =
        strategy != ExecutionStrategy::kCorrelated;
    exec_options.tracer = obs.tracer();
    double best_ms = 0;
    int64_t work = 0;
    int64_t rows = 0;
    for (int i = 0; i < 3; ++i) {
      Executor executor(pipeline->graph.get(), db.catalog(), exec_options);
      auto start = std::chrono::steady_clock::now();
      auto result = executor.Run();
      auto end = std::chrono::steady_clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      double ms =
          std::chrono::duration_cast<std::chrono::microseconds>(end - start)
              .count() /
          1000.0;
      if (i == 0 || ms < best_ms) best_ms = ms;
      work = executor.stats().TotalWork();
      rows = result->num_rows();
    }
    std::printf("%-11s %8d %12.3f %12lld %10lld %s\n", StrategyName(strategy),
                pipeline->graph->NumBoxes(), best_ms,
                static_cast<long long>(work), static_cast<long long>(rows),
                GraphComplexity(*pipeline->graph).c_str());
    report.Add({"queryD", StrategyName(strategy), work, best_ms, rows});
    if (strategy == ExecutionStrategy::kOriginal) {
      original_ms = best_ms;
      original_work = work;
    }
    if (strategy == ExecutionStrategy::kMagic) {
      emst_ms = best_ms;
      emst_work = work;
    }
  }

  double time_ratio = emst_ms > 0 ? original_ms / emst_ms : 0;
  double work_ratio =
      emst_work > 0 ? static_cast<double>(original_work) / emst_work : 0;
  std::printf(
      "\nOriginal/EMST speedup: %.1fx wall time, %.1fx work "
      "(paper: ~300x on DB2)\n",
      time_ratio, work_ratio);
  bool pass = work_ratio >= 10.0;
  std::printf("claim (>= 1 order of magnitude): %s\n",
              pass ? "REPRODUCED" : "NOT REPRODUCED");
  return obs.Verdict(pass);
}

}  // namespace
}  // namespace starmagic::bench

int main() { return starmagic::bench::Run(); }
